// UTilization-based (UT) baseline: sample the main thread's resource utilization (CPU time
// fraction and memory traffic, as read from /proc) every 100 ms; when a static threshold is
// violated during a dispatch, collect stack traces until the event ends. UTL uses the minimum
// utilization ever observed during a bug hang (catches everything, floods of false positives);
// UTH uses 90% of the peak (few false positives, misses most bugs) — Section 4.1.
//
// This class is the droidsim host; detection logic lives in UtilizationCore
// (detector_cores.h). The host owns the periodic /proc-style tick and hands the computed
// UtilizationSample to the core.
#ifndef SRC_BASELINES_UTILIZATION_DETECTOR_H_
#define SRC_BASELINES_UTILIZATION_DETECTOR_H_

#include "src/baselines/detector.h"
#include "src/droidsim/phone.h"
#include "src/droidsim/stack_sampler.h"

namespace baselines {

// Computes the utilization of a thread between two stat snapshots `window` apart.
UtilizationSample ComputeUtilization(const kernelsim::ThreadStats& before,
                                     const kernelsim::ThreadStats& after,
                                     simkit::SimDuration window);

class UtilizationDetector : public Detector {
 public:
  UtilizationDetector(droidsim::Phone* phone, droidsim::App* app,
                      UtilizationDetectorConfig config);
  ~UtilizationDetector() override;

  std::string name() const override { return core_.config().label; }
  const std::vector<DetectionOutcome>& outcomes() const override { return core_.outcomes(); }
  const hangdoctor::OverheadMeter& overhead() const override { return core_.overhead(); }
  int64_t samples_taken() const { return core_.samples_taken(); }
  int64_t spurious_detections() const override { return core_.spurious_detections(); }

  // droidsim::AppObserver:
  void OnInputEventStart(droidsim::App& app, const droidsim::ActionExecution& execution,
                         int32_t event_index) override;
  void OnInputEventEnd(droidsim::App& app, const droidsim::ActionExecution& execution,
                       int32_t event_index) override;
  void OnActionQuiesced(droidsim::App& app, const droidsim::ActionExecution& execution) override;

 private:
  void Tick();

  droidsim::Phone* phone_;
  droidsim::App* app_;
  UtilizationCore core_;
  droidsim::StackSampler sampler_;
  kernelsim::ThreadStats last_stats_;
  simkit::SimTime last_tick_ = 0;
  simkit::EventId pending_tick_ = 0;
};

}  // namespace baselines

#endif  // SRC_BASELINES_UTILIZATION_DETECTOR_H_
