// UTilization-based (UT) baseline: sample the main thread's resource utilization (CPU time
// fraction and memory traffic, as read from /proc) every 100 ms; when a static threshold is
// violated during a dispatch, collect stack traces until the event ends. UTL uses the minimum
// utilization ever observed during a bug hang (catches everything, floods of false positives);
// UTH uses 90% of the peak (few false positives, misses most bugs) — Section 4.1.
#ifndef SRC_BASELINES_UTILIZATION_DETECTOR_H_
#define SRC_BASELINES_UTILIZATION_DETECTOR_H_

#include <unordered_map>

#include "src/baselines/detector.h"
#include "src/droidsim/phone.h"
#include "src/droidsim/stack_sampler.h"

namespace baselines {

struct UtilizationThresholds {
  // Main-thread CPU time per wall time over the sampling window.
  double cpu_fraction = 0.5;
  // Memory traffic (faulted + allocated bytes) per second over the window.
  double mem_bytes_per_sec = 8.0 * 1024 * 1024;
};

struct UtilizationDetectorConfig {
  UtilizationThresholds thresholds;
  simkit::SimDuration period = simkit::Milliseconds(100);
  simkit::SimDuration sample_interval = simkit::Milliseconds(20);
  hangdoctor::TraceAnalyzerConfig analyzer;
  hangdoctor::MonitorCosts costs;
  std::string label = "UT";
};

// A point utilization measurement of one thread over a window.
struct UtilizationSample {
  double cpu_fraction = 0.0;
  double mem_bytes_per_sec = 0.0;

  bool Above(const UtilizationThresholds& thresholds) const {
    return cpu_fraction > thresholds.cpu_fraction ||
           mem_bytes_per_sec > thresholds.mem_bytes_per_sec;
  }
};

// Computes the utilization of `tid` between two stat snapshots `window` apart.
UtilizationSample ComputeUtilization(const kernelsim::ThreadStats& before,
                                     const kernelsim::ThreadStats& after,
                                     simkit::SimDuration window);

class UtilizationDetector : public Detector {
 public:
  UtilizationDetector(droidsim::Phone* phone, droidsim::App* app,
                      UtilizationDetectorConfig config);
  ~UtilizationDetector() override;

  std::string name() const override { return config_.label; }
  const std::vector<DetectionOutcome>& outcomes() const override { return outcomes_; }
  const hangdoctor::OverheadMeter& overhead() const override { return overhead_; }
  int64_t samples_taken() const { return samples_taken_; }
  int64_t spurious_detections() const override { return spurious_; }

  // droidsim::AppObserver:
  void OnInputEventStart(droidsim::App& app, const droidsim::ActionExecution& execution,
                         int32_t event_index) override;
  void OnInputEventEnd(droidsim::App& app, const droidsim::ActionExecution& execution,
                       int32_t event_index) override;
  void OnActionQuiesced(droidsim::App& app, const droidsim::ActionExecution& execution) override;

 private:
  struct LiveExecution {
    bool flagged = false;
    std::vector<droidsim::StackTrace> traces;
  };

  void Tick();

  droidsim::Phone* phone_;
  droidsim::App* app_;
  UtilizationDetectorConfig config_;
  hangdoctor::TraceAnalyzer analyzer_;
  hangdoctor::OverheadMeter overhead_;
  droidsim::StackSampler sampler_;
  std::unordered_map<int64_t, LiveExecution> live_;
  std::vector<DetectionOutcome> outcomes_;
  kernelsim::ThreadStats last_stats_;
  simkit::SimTime last_tick_ = 0;
  int64_t dispatching_execution_ = -1;  // execution whose event is currently dispatching
  simkit::EventId pending_tick_ = 0;
  int64_t samples_taken_ = 0;
  int64_t spurious_ = 0;
};

}  // namespace baselines

#endif  // SRC_BASELINES_UTILIZATION_DETECTOR_H_
