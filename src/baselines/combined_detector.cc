#include "src/baselines/combined_detector.h"

#include <utility>

#include "src/baselines/utilization_detector.h"

namespace baselines {

CombinedDetector::CombinedDetector(droidsim::Phone* phone, droidsim::App* app,
                                   CombinedDetectorConfig config)
    : phone_(phone),
      app_(app),
      core_(BaselineSessionInfo(*app), std::move(config)),
      sampler_(&phone->sim(), &app->main_looper(), core_.config().sample_interval) {
  app_->AddObserver(this);
}

CombinedDetector::~CombinedDetector() {
  if (pending_tick_ != 0) {
    phone_->sim().Cancel(pending_tick_);
  }
  app_->RemoveObserver(this);
}

void CombinedDetector::OnInputEventStart(droidsim::App& app,
                                         const droidsim::ActionExecution& execution,
                                         int32_t event_index) {
  (void)app;
  auto [it, inserted] = event_open_.try_emplace(execution.execution_id);
  if (inserted) {
    it->second.resize(execution.events_total, false);
  }
  it->second[static_cast<size_t>(event_index)] = true;

  hangdoctor::DispatchStart start;
  start.now = phone_->Now();
  start.execution_id = execution.execution_id;
  start.action_uid = execution.action_uid;
  start.event_index = event_index;
  start.events_total = static_cast<int32_t>(execution.events_total);
  core_.OnDispatchStart(start);

  int64_t execution_id = execution.execution_id;
  phone_->sim().ScheduleAfter(core_.config().timeout, [this, execution_id, event_index]() {
    auto open_it = event_open_.find(execution_id);
    if (open_it == event_open_.end()) {
      return;
    }
    auto idx = static_cast<size_t>(event_index);
    if (idx >= open_it->second.size() || !open_it->second[idx]) {
      return;  // finished below the timeout: utilization sampling never starts
    }
    // The hang is confirmed; start windowed utilization sampling.
    window_stats_ = phone_->kernel().ThreadStatsSnapshot(app_->main_tid());
    window_start_ = phone_->Now();
    HangTick(execution_id, event_index);
  });
}

void CombinedDetector::HangTick(int64_t execution_id, int32_t event_index) {
  pending_tick_ =
      phone_->sim().ScheduleAfter(core_.config().period, [this, execution_id, event_index]() {
        pending_tick_ = 0;
        auto it = event_open_.find(execution_id);
        if (it == event_open_.end()) {
          return;
        }
        auto idx = static_cast<size_t>(event_index);
        if (idx >= it->second.size() || !it->second[idx]) {
          return;  // the hang ended; stop sampling
        }
        kernelsim::ThreadStats now_stats =
            phone_->kernel().ThreadStatsSnapshot(app_->main_tid());
        UtilizationSample sample =
            ComputeUtilization(window_stats_, now_stats, phone_->Now() - window_start_);
        window_stats_ = now_stats;
        window_start_ = phone_->Now();
        if (core_.OnHangSample(execution_id, sample)) {
          if (!sampler_.active()) {
            sampler_.StartCollection();
          }
        }
        HangTick(execution_id, event_index);
      });
}

void CombinedDetector::OnInputEventEnd(droidsim::App& app,
                                       const droidsim::ActionExecution& execution,
                                       int32_t event_index) {
  (void)app;
  hangdoctor::DispatchEnd end;
  end.now = phone_->Now();
  end.execution_id = execution.execution_id;
  end.event_index = event_index;
  auto it = event_open_.find(execution.execution_id);
  if (it != event_open_.end()) {
    auto idx = static_cast<size_t>(event_index);
    if (idx < it->second.size()) {
      it->second[idx] = false;
    }
    const droidsim::EventTiming& timing = execution.events[idx];
    end.response = timing.end - timing.start;
    if (sampler_.active()) {
      end.trace_stopped = true;
      end.samples = sampler_.StopCollection();
    }
  }
  core_.OnDispatchEnd(end);
}

void CombinedDetector::OnActionQuiesced(droidsim::App& app,
                                        const droidsim::ActionExecution& execution) {
  (void)app;
  hangdoctor::ActionQuiesce quiesce;
  quiesce.now = phone_->Now();
  quiesce.execution_id = execution.execution_id;
  quiesce.action_uid = execution.action_uid;
  quiesce.max_response = execution.max_response;
  core_.OnActionQuiesced(quiesce);
  event_open_.erase(execution.execution_id);
}

}  // namespace baselines
