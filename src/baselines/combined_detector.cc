#include "src/baselines/combined_detector.h"

#include <utility>

namespace baselines {

CombinedDetector::CombinedDetector(droidsim::Phone* phone, droidsim::App* app,
                                   CombinedDetectorConfig config)
    : phone_(phone),
      app_(app),
      config_(std::move(config)),
      analyzer_(config_.analyzer),
      sampler_(&phone->sim(), &app->main_looper(), config_.sample_interval) {
  app_->AddObserver(this);
}

CombinedDetector::~CombinedDetector() {
  if (pending_tick_ != 0) {
    phone_->sim().Cancel(pending_tick_);
  }
  app_->RemoveObserver(this);
}

void CombinedDetector::OnInputEventStart(droidsim::App& app,
                                         const droidsim::ActionExecution& execution,
                                         int32_t event_index) {
  (void)app;
  overhead_.AddCpu(config_.costs.response_probe);
  auto [it, inserted] = live_.try_emplace(execution.execution_id);
  if (inserted) {
    it->second.event_open.resize(execution.events_total, false);
  }
  it->second.event_open[static_cast<size_t>(event_index)] = true;
  int64_t execution_id = execution.execution_id;
  phone_->sim().ScheduleAfter(config_.timeout, [this, execution_id, event_index]() {
    auto live_it = live_.find(execution_id);
    if (live_it == live_.end()) {
      return;
    }
    auto idx = static_cast<size_t>(event_index);
    if (idx >= live_it->second.event_open.size() || !live_it->second.event_open[idx]) {
      return;  // finished below the timeout: utilization sampling never starts
    }
    // The hang is confirmed; start windowed utilization sampling.
    window_stats_ = phone_->kernel().ThreadStatsSnapshot(app_->main_tid());
    window_start_ = phone_->Now();
    HangTick(execution_id, event_index);
  });
}

void CombinedDetector::HangTick(int64_t execution_id, int32_t event_index) {
  pending_tick_ =
      phone_->sim().ScheduleAfter(config_.period, [this, execution_id, event_index]() {
        pending_tick_ = 0;
        auto it = live_.find(execution_id);
        if (it == live_.end()) {
          return;
        }
        auto idx = static_cast<size_t>(event_index);
        if (idx >= it->second.event_open.size() || !it->second.event_open[idx]) {
          return;  // the hang ended; stop sampling
        }
        overhead_.AddCpu(config_.costs.utilization_sample);
        overhead_.AddMemory(config_.costs.utilization_sample_bytes);
        kernelsim::ThreadStats now_stats =
            phone_->kernel().ThreadStatsSnapshot(app_->main_tid());
        UtilizationSample sample =
            ComputeUtilization(window_stats_, now_stats, phone_->Now() - window_start_);
        window_stats_ = now_stats;
        window_start_ = phone_->Now();
        if (sample.Above(config_.thresholds)) {
          it->second.flagged = true;
          if (!sampler_.active()) {
            sampler_.StartCollection();
          }
        }
        HangTick(execution_id, event_index);
      });
}

void CombinedDetector::OnInputEventEnd(droidsim::App& app,
                                       const droidsim::ActionExecution& execution,
                                       int32_t event_index) {
  (void)app;
  overhead_.AddCpu(config_.costs.response_probe);
  auto it = live_.find(execution.execution_id);
  if (it == live_.end()) {
    return;
  }
  auto idx = static_cast<size_t>(event_index);
  if (idx < it->second.event_open.size()) {
    it->second.event_open[idx] = false;
  }
  if (sampler_.active()) {
    std::span<const droidsim::StackTrace> collected = sampler_.StopCollection();
    auto count = static_cast<int64_t>(collected.size());
    overhead_.AddCpu(config_.costs.trace_start);
    overhead_.AddMemory(config_.costs.trace_start_bytes);
    overhead_.AddCpu(config_.costs.stack_sample * count);
    overhead_.AddMemory(config_.costs.stack_sample_bytes * count);
    // The sampler's buffer is reused on the next collection; copy the id traces out.
    it->second.traces.insert(it->second.traces.end(), collected.begin(), collected.end());
  }
}

void CombinedDetector::OnActionQuiesced(droidsim::App& app,
                                        const droidsim::ActionExecution& execution) {
  (void)app;
  auto it = live_.find(execution.execution_id);
  if (it == live_.end()) {
    return;
  }
  DetectionOutcome outcome;
  outcome.action_uid = execution.action_uid;
  outcome.execution_id = execution.execution_id;
  outcome.response = execution.max_response;
  outcome.hang = execution.max_response > simkit::kPerceivableDelay;
  outcome.flagged = it->second.flagged;
  outcome.traced = !it->second.traces.empty();
  if (outcome.traced) {
    outcome.diagnosis = analyzer_.Analyze(it->second.traces, app.symbols());
  }
  outcomes_.push_back(std::move(outcome));
  live_.erase(it);
}

}  // namespace baselines
