// TImeout-based (TI) baseline: declare a potential soft hang bug whenever an input event's
// response time exceeds a timeout, and collect stack traces for the remainder of the hang.
// With the 5 s timeout this is Android's ANR tool; with 100 ms it is the Jovic et al. style
// detector whose false-positive cost Table 2 quantifies.
//
// This class is the droidsim host; detection logic lives in TimeoutCore (detector_cores.h).
#ifndef SRC_BASELINES_TIMEOUT_DETECTOR_H_
#define SRC_BASELINES_TIMEOUT_DETECTOR_H_

#include <unordered_map>
#include <vector>

#include "src/baselines/detector.h"
#include "src/droidsim/phone.h"
#include "src/droidsim/stack_sampler.h"

namespace baselines {

class TimeoutDetector : public Detector {
 public:
  TimeoutDetector(droidsim::Phone* phone, droidsim::App* app, TimeoutDetectorConfig config);
  ~TimeoutDetector() override;

  std::string name() const override;
  const std::vector<DetectionOutcome>& outcomes() const override { return core_.outcomes(); }
  const hangdoctor::OverheadMeter& overhead() const override { return core_.overhead(); }

  // droidsim::AppObserver:
  void OnInputEventStart(droidsim::App& app, const droidsim::ActionExecution& execution,
                         int32_t event_index) override;
  void OnInputEventEnd(droidsim::App& app, const droidsim::ActionExecution& execution,
                       int32_t event_index) override;
  void OnActionQuiesced(droidsim::App& app, const droidsim::ActionExecution& execution) override;

 private:
  droidsim::Phone* phone_;
  droidsim::App* app_;
  TimeoutCore core_;
  droidsim::StackSampler sampler_;
  std::unordered_map<int64_t, std::vector<bool>> event_open_;
};

}  // namespace baselines

#endif  // SRC_BASELINES_TIMEOUT_DETECTOR_H_
