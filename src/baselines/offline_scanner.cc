#include "src/baselines/offline_scanner.h"

namespace baselines {

void OfflineScanner::ScanNode(const droidsim::AppSpec& app, const std::string& action,
                              const droidsim::OpNode& node,
                              std::vector<OfflineFinding>* findings) const {
  if (node.on_worker) {
    return;  // not on the main thread: not a soft hang bug
  }
  if (node.in_closed_library) {
    // The scanner has no source for this frame or anything beneath it.
    return;
  }
  if (node.api != nullptr && database_->IsKnown(node.api->full_name)) {
    OfflineFinding finding;
    finding.app_package = app.package;
    finding.action = action;
    finding.api = node.api->full_name;
    finding.file = node.file;
    finding.line = node.line;
    findings->push_back(std::move(finding));
  }
  for (const droidsim::OpNode& child : node.children) {
    ScanNode(app, action, child, findings);
  }
}

std::vector<OfflineFinding> OfflineScanner::Scan(const droidsim::AppSpec& app) const {
  std::vector<OfflineFinding> findings;
  for (const droidsim::ActionSpec& action : app.actions) {
    for (const droidsim::InputEventSpec& event : action.events) {
      for (const droidsim::OpNode& node : event.ops) {
        ScanNode(app, action.name, node, &findings);
      }
    }
  }
  return findings;
}

bool OfflineScanner::Detects(const droidsim::AppSpec& app, const std::string& api) const {
  for (const OfflineFinding& finding : Scan(app)) {
    if (finding.api == api) {
      return true;
    }
  }
  return false;
}

}  // namespace baselines
