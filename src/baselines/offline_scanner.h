// PerfChecker-style offline detector (Liu et al., ICSE'14): statically scan the app's
// main-thread code for calls to *known* blocking APIs. Reproduces the three failure modes the
// paper motivates Hang Doctor with:
//  1. previously unknown blocking APIs are invisible (not in the database);
//  2. calls inside closed-source third-party libraries cannot be examined;
//  3. self-developed lengthy operations have no API name to search for.
#ifndef SRC_BASELINES_OFFLINE_SCANNER_H_
#define SRC_BASELINES_OFFLINE_SCANNER_H_

#include <string>
#include <vector>

#include "src/droidsim/app.h"
#include "src/hangdoctor/blocking_api_db.h"

namespace baselines {

struct OfflineFinding {
  std::string app_package;
  std::string action;
  std::string api;  // clazz.function
  std::string file;
  int32_t line = 0;
};

class OfflineScanner {
 public:
  explicit OfflineScanner(const hangdoctor::BlockingApiDatabase* database)
      : database_(database) {}

  // Scans every action's main-thread operation tree. Subtrees posted to worker threads are
  // skipped (they are not on the main thread); frames inside closed-source libraries are
  // skipped (no source to examine).
  std::vector<OfflineFinding> Scan(const droidsim::AppSpec& app) const;

  // Convenience: true if the scan reports `api` anywhere in the app.
  bool Detects(const droidsim::AppSpec& app, const std::string& api) const;

 private:
  void ScanNode(const droidsim::AppSpec& app, const std::string& action,
                const droidsim::OpNode& node, std::vector<OfflineFinding>* findings) const;

  const hangdoctor::BlockingApiDatabase* database_;
};

}  // namespace baselines

#endif  // SRC_BASELINES_OFFLINE_SCANNER_H_
