#include "src/baselines/timeout_detector.h"

#include <utility>

namespace baselines {

TimeoutDetector::TimeoutDetector(droidsim::Phone* phone, droidsim::App* app,
                                 TimeoutDetectorConfig config)
    : phone_(phone),
      app_(app),
      core_(BaselineSessionInfo(*app), config),
      sampler_(&phone->sim(), &app->main_looper(), config.sample_interval) {
  app_->AddObserver(this);
}

TimeoutDetector::~TimeoutDetector() { app_->RemoveObserver(this); }

std::string TimeoutDetector::name() const {
  return "TI-" + std::to_string(simkit::ToMilliseconds(core_.config().timeout)) + "ms";
}

void TimeoutDetector::OnInputEventStart(droidsim::App& app,
                                        const droidsim::ActionExecution& execution,
                                        int32_t event_index) {
  (void)app;
  auto [it, inserted] = event_open_.try_emplace(execution.execution_id);
  if (inserted) {
    it->second.resize(execution.events_total, false);
  }
  it->second[static_cast<size_t>(event_index)] = true;

  hangdoctor::DispatchStart start;
  start.now = phone_->Now();
  start.execution_id = execution.execution_id;
  start.action_uid = execution.action_uid;
  start.event_index = event_index;
  start.events_total = static_cast<int32_t>(execution.events_total);
  core_.OnDispatchStart(start);

  int64_t execution_id = execution.execution_id;
  phone_->sim().ScheduleAfter(core_.config().timeout, [this, execution_id, event_index]() {
    auto open_it = event_open_.find(execution_id);
    if (open_it == event_open_.end()) {
      return;
    }
    auto idx = static_cast<size_t>(event_index);
    if (idx >= open_it->second.size() || !open_it->second[idx]) {
      return;
    }
    if (!sampler_.active()) {
      sampler_.StartCollection();
    }
  });
}

void TimeoutDetector::OnInputEventEnd(droidsim::App& app,
                                      const droidsim::ActionExecution& execution,
                                      int32_t event_index) {
  (void)app;
  hangdoctor::DispatchEnd end;
  end.now = phone_->Now();
  end.execution_id = execution.execution_id;
  end.event_index = event_index;
  auto it = event_open_.find(execution.execution_id);
  if (it != event_open_.end()) {
    auto idx = static_cast<size_t>(event_index);
    if (idx < it->second.size()) {
      it->second[idx] = false;
    }
    const droidsim::EventTiming& timing = execution.events[idx];
    end.response = timing.end - timing.start;
    if (sampler_.active()) {
      end.trace_stopped = true;
      end.samples = sampler_.StopCollection();
    }
  }
  core_.OnDispatchEnd(end);
}

void TimeoutDetector::OnActionQuiesced(droidsim::App& app,
                                       const droidsim::ActionExecution& execution) {
  (void)app;
  hangdoctor::ActionQuiesce quiesce;
  quiesce.now = phone_->Now();
  quiesce.execution_id = execution.execution_id;
  quiesce.action_uid = execution.action_uid;
  quiesce.max_response = execution.max_response;
  core_.OnActionQuiesced(quiesce);
  event_open_.erase(execution.execution_id);
}

}  // namespace baselines
