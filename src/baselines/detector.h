// Common shape of the paper's baseline runtime detectors (Section 4.1). Every baseline
// watches an app's input events, decides per action execution whether to collect stack traces
// (the costed act the evaluation counts), and charges its monitoring work to an OverheadMeter
// using the same cost model as Hang Doctor, so Figure 8(c) is an apples-to-apples comparison.
#ifndef SRC_BASELINES_DETECTOR_H_
#define SRC_BASELINES_DETECTOR_H_

#include <string>
#include <vector>

#include "src/droidsim/app.h"
#include "src/hangdoctor/overhead.h"
#include "src/hangdoctor/trace_analyzer.h"

namespace baselines {

struct DetectionOutcome {
  int32_t action_uid = -1;
  int64_t execution_id = 0;
  simkit::SimDuration response = 0;
  bool hang = false;     // response exceeded the detector's hang definition (100 ms)
  bool flagged = false;  // detector declared a potential soft hang bug
  bool traced = false;   // stack traces were collected (the costed act)
  hangdoctor::Diagnosis diagnosis;
};

class Detector : public droidsim::AppObserver {
 public:
  ~Detector() override = default;

  virtual std::string name() const = 0;
  virtual const std::vector<DetectionOutcome>& outcomes() const = 0;
  virtual const hangdoctor::OverheadMeter& overhead() const = 0;

  // Detections raised outside any soft hang (possible for the utilization baselines, which
  // fire whenever a threshold is crossed, hang or not). Pure false positives.
  virtual int64_t spurious_detections() const { return 0; }
};

}  // namespace baselines

#endif  // SRC_BASELINES_DETECTOR_H_
