// Common shape of the paper's baseline runtime detectors (Section 4.1). Every baseline
// watches an app's input events, decides per action execution whether to collect stack traces
// (the costed act the evaluation counts), and charges its monitoring work to an OverheadMeter
// using the same cost model as Hang Doctor, so Figure 8(c) is an apples-to-apples comparison.
//
// The decision logic lives in substrate-agnostic cores (detector_cores.h) consuming the same
// Telemetry Host SPI as Hang Doctor's DetectorCore; the classes deriving from Detector are
// the droidsim hosts.
#ifndef SRC_BASELINES_DETECTOR_H_
#define SRC_BASELINES_DETECTOR_H_

#include <string>
#include <vector>

#include "src/baselines/detector_cores.h"
#include "src/droidsim/app.h"

namespace baselines {

class Detector : public droidsim::AppObserver {
 public:
  ~Detector() override = default;

  virtual std::string name() const = 0;
  virtual const std::vector<DetectionOutcome>& outcomes() const = 0;
  virtual const hangdoctor::OverheadMeter& overhead() const = 0;

  // Detections raised outside any soft hang (possible for the utilization baselines, which
  // fire whenever a threshold is crossed, hang or not). Pure false positives.
  virtual int64_t spurious_detections() const { return 0; }
};

// Builds the SPI session descriptor for a droidsim-hosted baseline.
inline hangdoctor::SessionInfo BaselineSessionInfo(const droidsim::App& app) {
  hangdoctor::SessionInfo info;
  info.app_package = app.spec().package;
  info.num_actions = app.num_actions();
  info.symbols = &app.symbols();
  return info;
}

}  // namespace baselines

#endif  // SRC_BASELINES_DETECTOR_H_
