#include "src/baselines/utilization_detector.h"

#include <utility>

#include "src/kernelsim/types.h"

namespace baselines {

UtilizationSample ComputeUtilization(const kernelsim::ThreadStats& before,
                                     const kernelsim::ThreadStats& after,
                                     simkit::SimDuration window) {
  UtilizationSample sample;
  if (window <= 0) {
    return sample;
  }
  sample.cpu_fraction =
      static_cast<double>(after.cpu_time - before.cpu_time) / static_cast<double>(window);
  int64_t fault_bytes = ((after.minor_faults + after.major_faults) -
                         (before.minor_faults + before.major_faults)) *
                        kernelsim::kPageSize;
  int64_t alloc_bytes = after.allocated_bytes - before.allocated_bytes;
  sample.mem_bytes_per_sec = static_cast<double>(fault_bytes + alloc_bytes) /
                             simkit::ToSeconds(window);
  return sample;
}

UtilizationDetector::UtilizationDetector(droidsim::Phone* phone, droidsim::App* app,
                                         UtilizationDetectorConfig config)
    : phone_(phone),
      app_(app),
      core_(BaselineSessionInfo(*app), std::move(config)),
      sampler_(&phone->sim(), &app->main_looper(), core_.config().sample_interval) {
  app_->AddObserver(this);
  last_stats_ = phone_->kernel().ThreadStatsSnapshot(app_->main_tid());
  last_tick_ = phone_->Now();
  pending_tick_ = phone_->sim().ScheduleAfter(core_.config().period, [this]() { Tick(); });
}

UtilizationDetector::~UtilizationDetector() {
  if (pending_tick_ != 0) {
    phone_->sim().Cancel(pending_tick_);
  }
  app_->RemoveObserver(this);
}

void UtilizationDetector::Tick() {
  pending_tick_ = 0;
  kernelsim::ThreadStats now_stats = phone_->kernel().ThreadStatsSnapshot(app_->main_tid());
  simkit::SimTime now = phone_->Now();
  UtilizationSample sample = ComputeUtilization(last_stats_, now_stats, now - last_tick_);
  last_stats_ = now_stats;
  last_tick_ = now;
  if (core_.OnUtilizationTick(sample)) {
    if (!sampler_.active()) {
      sampler_.StartCollection();
    }
  }
  pending_tick_ = phone_->sim().ScheduleAfter(core_.config().period, [this]() { Tick(); });
}

void UtilizationDetector::OnInputEventStart(droidsim::App& app,
                                            const droidsim::ActionExecution& execution,
                                            int32_t event_index) {
  (void)app;
  hangdoctor::DispatchStart start;
  start.now = phone_->Now();
  start.execution_id = execution.execution_id;
  start.action_uid = execution.action_uid;
  start.event_index = event_index;
  start.events_total = static_cast<int32_t>(execution.events_total);
  core_.OnDispatchStart(start);
}

void UtilizationDetector::OnInputEventEnd(droidsim::App& app,
                                          const droidsim::ActionExecution& execution,
                                          int32_t event_index) {
  (void)app;
  hangdoctor::DispatchEnd end;
  end.now = phone_->Now();
  end.execution_id = execution.execution_id;
  end.event_index = event_index;
  auto idx = static_cast<size_t>(event_index);
  if (idx < execution.events.size()) {
    const droidsim::EventTiming& timing = execution.events[idx];
    end.response = timing.end - timing.start;
  }
  if (sampler_.active()) {
    end.trace_stopped = true;
    end.samples = sampler_.StopCollection();
  }
  core_.OnDispatchEnd(end);
}

void UtilizationDetector::OnActionQuiesced(droidsim::App& app,
                                           const droidsim::ActionExecution& execution) {
  (void)app;
  hangdoctor::ActionQuiesce quiesce;
  quiesce.now = phone_->Now();
  quiesce.execution_id = execution.execution_id;
  quiesce.action_uid = execution.action_uid;
  quiesce.max_response = execution.max_response;
  core_.OnActionQuiesced(quiesce);
}

}  // namespace baselines
