#include "src/baselines/utilization_detector.h"

#include <utility>

#include "src/kernelsim/types.h"

namespace baselines {

UtilizationSample ComputeUtilization(const kernelsim::ThreadStats& before,
                                     const kernelsim::ThreadStats& after,
                                     simkit::SimDuration window) {
  UtilizationSample sample;
  if (window <= 0) {
    return sample;
  }
  sample.cpu_fraction =
      static_cast<double>(after.cpu_time - before.cpu_time) / static_cast<double>(window);
  int64_t fault_bytes = ((after.minor_faults + after.major_faults) -
                         (before.minor_faults + before.major_faults)) *
                        kernelsim::kPageSize;
  int64_t alloc_bytes = after.allocated_bytes - before.allocated_bytes;
  sample.mem_bytes_per_sec = static_cast<double>(fault_bytes + alloc_bytes) /
                             simkit::ToSeconds(window);
  return sample;
}

UtilizationDetector::UtilizationDetector(droidsim::Phone* phone, droidsim::App* app,
                                         UtilizationDetectorConfig config)
    : phone_(phone),
      app_(app),
      config_(std::move(config)),
      analyzer_(config_.analyzer),
      sampler_(&phone->sim(), &app->main_looper(), config_.sample_interval) {
  app_->AddObserver(this);
  last_stats_ = phone_->kernel().ThreadStatsSnapshot(app_->main_tid());
  last_tick_ = phone_->Now();
  pending_tick_ = phone_->sim().ScheduleAfter(config_.period, [this]() { Tick(); });
}

UtilizationDetector::~UtilizationDetector() {
  if (pending_tick_ != 0) {
    phone_->sim().Cancel(pending_tick_);
  }
  app_->RemoveObserver(this);
}

void UtilizationDetector::Tick() {
  pending_tick_ = 0;
  ++samples_taken_;
  overhead_.AddCpu(config_.costs.utilization_sample);
  overhead_.AddMemory(config_.costs.utilization_sample_bytes);
  kernelsim::ThreadStats now_stats = phone_->kernel().ThreadStatsSnapshot(app_->main_tid());
  simkit::SimTime now = phone_->Now();
  UtilizationSample sample = ComputeUtilization(last_stats_, now_stats, now - last_tick_);
  last_stats_ = now_stats;
  last_tick_ = now;
  if (sample.Above(config_.thresholds)) {
    if (dispatching_execution_ >= 0) {
      auto it = live_.find(dispatching_execution_);
      if (it != live_.end()) {
        it->second.flagged = true;
        if (!sampler_.active()) {
          sampler_.StartCollection();
        }
      }
    } else {
      // Threshold crossed with no input event in flight: the detector still raises a
      // potential-bug alarm and pays for a trace burst — a pure false positive.
      ++spurious_;
      constexpr int64_t kSpuriousTraceSamples = 4;
      overhead_.AddCpu(config_.costs.trace_start +
                       config_.costs.stack_sample * kSpuriousTraceSamples);
      overhead_.AddMemory(config_.costs.trace_start_bytes +
                          config_.costs.stack_sample_bytes * kSpuriousTraceSamples);
    }
  }
  pending_tick_ = phone_->sim().ScheduleAfter(config_.period, [this]() { Tick(); });
}

void UtilizationDetector::OnInputEventStart(droidsim::App& app,
                                            const droidsim::ActionExecution& execution,
                                            int32_t event_index) {
  (void)app;
  (void)event_index;
  overhead_.AddCpu(config_.costs.response_probe);
  live_.try_emplace(execution.execution_id);
  dispatching_execution_ = execution.execution_id;
}

void UtilizationDetector::OnInputEventEnd(droidsim::App& app,
                                          const droidsim::ActionExecution& execution,
                                          int32_t event_index) {
  (void)app;
  (void)event_index;
  overhead_.AddCpu(config_.costs.response_probe);
  dispatching_execution_ = -1;
  auto it = live_.find(execution.execution_id);
  if (it == live_.end()) {
    return;
  }
  if (sampler_.active()) {
    std::span<const droidsim::StackTrace> collected = sampler_.StopCollection();
    auto count = static_cast<int64_t>(collected.size());
    overhead_.AddCpu(config_.costs.trace_start);
    overhead_.AddMemory(config_.costs.trace_start_bytes);
    overhead_.AddCpu(config_.costs.stack_sample * count);
    overhead_.AddMemory(config_.costs.stack_sample_bytes * count);
    // The sampler's buffer is reused on the next collection; copy the id traces out.
    it->second.traces.insert(it->second.traces.end(), collected.begin(), collected.end());
  }
}

void UtilizationDetector::OnActionQuiesced(droidsim::App& app,
                                           const droidsim::ActionExecution& execution) {
  (void)app;
  auto it = live_.find(execution.execution_id);
  if (it == live_.end()) {
    return;
  }
  DetectionOutcome outcome;
  outcome.action_uid = execution.action_uid;
  outcome.execution_id = execution.execution_id;
  outcome.response = execution.max_response;
  outcome.hang = execution.max_response > simkit::kPerceivableDelay;
  outcome.flagged = it->second.flagged;
  outcome.traced = !it->second.traces.empty();
  if (outcome.traced) {
    outcome.diagnosis = analyzer_.Analyze(it->second.traces, app.symbols());
  }
  outcomes_.push_back(std::move(outcome));
  live_.erase(it);
}

}  // namespace baselines
