#include "src/baselines/detector_cores.h"

#include <utility>

namespace baselines {

namespace {

void ChargeStoppedTrace(const hangdoctor::DispatchEnd& end,
                        const hangdoctor::MonitorCosts& costs,
                        hangdoctor::OverheadMeter& overhead,
                        std::vector<telemetry::StackTrace>& traces) {
  auto count = static_cast<int64_t>(end.samples.size());
  overhead.AddCpu(costs.trace_start);
  overhead.AddMemory(costs.trace_start_bytes);
  overhead.AddCpu(costs.stack_sample * count);
  overhead.AddMemory(costs.stack_sample_bytes * count);
  // The host's sample buffer is reused on the next collection; copy the id traces out.
  traces.insert(traces.end(), end.samples.begin(), end.samples.end());
}

}  // namespace

TimeoutCore::TimeoutCore(const hangdoctor::SessionInfo& info, TimeoutDetectorConfig config)
    : info_(info), config_(config), analyzer_(config.analyzer) {}

void TimeoutCore::OnDispatchStart(const hangdoctor::DispatchStart& start) {
  if (!guard_.AdmitTime(start.now)) {
    return;
  }
  overhead_.AddCpu(config_.costs.response_probe);
  live_.try_emplace(start.execution_id);
}

void TimeoutCore::OnDispatchEnd(const hangdoctor::DispatchEnd& end) {
  if (!guard_.AdmitTime(end.now)) {
    return;
  }
  auto it = live_.find(end.execution_id);
  if (it == live_.end()) {
    ++degradation_.dropped_records;
    return;
  }
  overhead_.AddCpu(config_.costs.response_probe);
  if (end.trace_stopped) {
    ChargeStoppedTrace(end, config_.costs, overhead_, it->second.traces);
  }
}

void TimeoutCore::OnActionQuiesced(const hangdoctor::ActionQuiesce& quiesce) {
  if (!guard_.AdmitTime(quiesce.now)) {
    return;
  }
  auto it = live_.find(quiesce.execution_id);
  if (it == live_.end()) {
    ++degradation_.dropped_records;
    return;
  }
  DetectionOutcome outcome;
  outcome.action_uid = quiesce.action_uid;
  outcome.execution_id = quiesce.execution_id;
  outcome.response = quiesce.max_response;
  outcome.hang = quiesce.max_response > simkit::kPerceivableDelay;
  outcome.flagged = quiesce.max_response > config_.timeout;
  outcome.traced = !it->second.traces.empty();
  if (outcome.traced) {
    outcome.diagnosis = analyzer_.Analyze(it->second.traces, *info_.symbols);
  }
  outcomes_.push_back(std::move(outcome));
  live_.erase(it);
}

UtilizationCore::UtilizationCore(const hangdoctor::SessionInfo& info,
                                 UtilizationDetectorConfig config)
    : info_(info), config_(std::move(config)), analyzer_(config_.analyzer) {}

void UtilizationCore::OnDispatchStart(const hangdoctor::DispatchStart& start) {
  if (!guard_.AdmitTime(start.now)) {
    return;
  }
  overhead_.AddCpu(config_.costs.response_probe);
  live_.try_emplace(start.execution_id);
  dispatching_execution_ = start.execution_id;
}

bool UtilizationCore::OnUtilizationTick(const UtilizationSample& sample) {
  ++samples_taken_;
  overhead_.AddCpu(config_.costs.utilization_sample);
  overhead_.AddMemory(config_.costs.utilization_sample_bytes);
  if (!sample.Above(config_.thresholds)) {
    return false;
  }
  if (dispatching_execution_ >= 0) {
    auto it = live_.find(dispatching_execution_);
    if (it != live_.end()) {
      it->second.flagged = true;
      return true;
    }
    return false;
  }
  // Threshold crossed with no input event in flight: the detector still raises a
  // potential-bug alarm and pays for a trace burst — a pure false positive.
  ++spurious_;
  constexpr int64_t kSpuriousTraceSamples = 4;
  overhead_.AddCpu(config_.costs.trace_start +
                   config_.costs.stack_sample * kSpuriousTraceSamples);
  overhead_.AddMemory(config_.costs.trace_start_bytes +
                      config_.costs.stack_sample_bytes * kSpuriousTraceSamples);
  return false;
}

void UtilizationCore::OnDispatchEnd(const hangdoctor::DispatchEnd& end) {
  if (!guard_.AdmitTime(end.now)) {
    return;
  }
  dispatching_execution_ = -1;
  auto it = live_.find(end.execution_id);
  if (it == live_.end()) {
    ++degradation_.dropped_records;
    return;
  }
  overhead_.AddCpu(config_.costs.response_probe);
  if (end.trace_stopped) {
    ChargeStoppedTrace(end, config_.costs, overhead_, it->second.traces);
  }
}

void UtilizationCore::OnActionQuiesced(const hangdoctor::ActionQuiesce& quiesce) {
  if (!guard_.AdmitTime(quiesce.now)) {
    return;
  }
  auto it = live_.find(quiesce.execution_id);
  if (it == live_.end()) {
    ++degradation_.dropped_records;
    return;
  }
  DetectionOutcome outcome;
  outcome.action_uid = quiesce.action_uid;
  outcome.execution_id = quiesce.execution_id;
  outcome.response = quiesce.max_response;
  outcome.hang = quiesce.max_response > simkit::kPerceivableDelay;
  outcome.flagged = it->second.flagged;
  outcome.traced = !it->second.traces.empty();
  if (outcome.traced) {
    outcome.diagnosis = analyzer_.Analyze(it->second.traces, *info_.symbols);
  }
  outcomes_.push_back(std::move(outcome));
  live_.erase(it);
}

CombinedCore::CombinedCore(const hangdoctor::SessionInfo& info, CombinedDetectorConfig config)
    : info_(info), config_(std::move(config)), analyzer_(config_.analyzer) {}

void CombinedCore::OnDispatchStart(const hangdoctor::DispatchStart& start) {
  if (!guard_.AdmitTime(start.now)) {
    return;
  }
  overhead_.AddCpu(config_.costs.response_probe);
  live_.try_emplace(start.execution_id);
}

bool CombinedCore::OnHangSample(int64_t execution_id, const UtilizationSample& sample) {
  auto it = live_.find(execution_id);
  if (it == live_.end()) {
    return false;
  }
  overhead_.AddCpu(config_.costs.utilization_sample);
  overhead_.AddMemory(config_.costs.utilization_sample_bytes);
  if (sample.Above(config_.thresholds)) {
    it->second.flagged = true;
    return true;
  }
  return false;
}

void CombinedCore::OnDispatchEnd(const hangdoctor::DispatchEnd& end) {
  if (!guard_.AdmitTime(end.now)) {
    return;
  }
  auto it = live_.find(end.execution_id);
  if (it == live_.end()) {
    ++degradation_.dropped_records;
    return;
  }
  overhead_.AddCpu(config_.costs.response_probe);
  if (end.trace_stopped) {
    ChargeStoppedTrace(end, config_.costs, overhead_, it->second.traces);
  }
}

void CombinedCore::OnActionQuiesced(const hangdoctor::ActionQuiesce& quiesce) {
  if (!guard_.AdmitTime(quiesce.now)) {
    return;
  }
  auto it = live_.find(quiesce.execution_id);
  if (it == live_.end()) {
    ++degradation_.dropped_records;
    return;
  }
  DetectionOutcome outcome;
  outcome.action_uid = quiesce.action_uid;
  outcome.execution_id = quiesce.execution_id;
  outcome.response = quiesce.max_response;
  outcome.hang = quiesce.max_response > simkit::kPerceivableDelay;
  outcome.flagged = it->second.flagged;
  outcome.traced = !it->second.traces.empty();
  if (outcome.traced) {
    outcome.diagnosis = analyzer_.Analyze(it->second.traces, *info_.symbols);
  }
  outcomes_.push_back(std::move(outcome));
  live_.erase(it);
}

}  // namespace baselines
