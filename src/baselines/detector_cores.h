// Substrate-agnostic cores of the paper's baseline runtime detectors (Section 4.1), ported
// to the same Telemetry Host SPI as Hang Doctor's DetectorCore: each core consumes
// DispatchStart / DispatchEnd / ActionQuiesce telemetry (plus, for the utilization family,
// point UtilizationSamples), and never touches a substrate. The droidsim adapters in
// timeout_detector.h / utilization_detector.h / combined_detector.h own the simulator
// mechanics (timeout timers, /proc snapshots, the stack sampler) and delegate every decision
// here — so the baselines, like Hang Doctor, are replayable functions of a telemetry stream.
//
// Every core embeds the same hangdoctor::StreamGuard contract as DetectorCore: an impossible
// stream (time regression) fails sticky; duplicate-shaped records (an end or quiesce for an
// unknown execution) are dropped and counted in DegradationStats — keeping fault-injected
// Table 2/5 comparisons apples-to-apples across detectors.
#ifndef SRC_BASELINES_DETECTOR_CORES_H_
#define SRC_BASELINES_DETECTOR_CORES_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/hangdoctor/host_spi.h"
#include "src/hangdoctor/overhead.h"
#include "src/hangdoctor/stream_guard.h"
#include "src/hangdoctor/thresholds.h"
#include "src/hangdoctor/trace_analyzer.h"

namespace baselines {

struct DetectionOutcome {
  int32_t action_uid = -1;
  int64_t execution_id = 0;
  simkit::SimDuration response = 0;
  bool hang = false;     // response exceeded the detector's hang definition (100 ms)
  bool flagged = false;  // detector declared a potential soft hang bug
  bool traced = false;   // stack traces were collected (the costed act)
  hangdoctor::Diagnosis diagnosis;
};

struct UtilizationThresholds {
  // Main-thread CPU time per wall time over the sampling window.
  double cpu_fraction = 0.5;
  // Memory traffic (faulted + allocated bytes) per second over the window.
  double mem_bytes_per_sec = 8.0 * 1024 * 1024;
};

// A point utilization measurement of one thread over a window — the utilization family's
// extra telemetry input, computed host-side from whatever /proc equivalent exists.
struct UtilizationSample {
  double cpu_fraction = 0.0;
  double mem_bytes_per_sec = 0.0;

  bool Above(const UtilizationThresholds& thresholds) const {
    return cpu_fraction > thresholds.cpu_fraction ||
           mem_bytes_per_sec > thresholds.mem_bytes_per_sec;
  }
};

struct TimeoutDetectorConfig {
  simkit::SimDuration timeout = simkit::kPerceivableDelay;
  simkit::SimDuration sample_interval = simkit::Milliseconds(20);
  hangdoctor::TraceAnalyzerConfig analyzer;
  hangdoctor::MonitorCosts costs;
};

struct UtilizationDetectorConfig {
  UtilizationThresholds thresholds;
  simkit::SimDuration period = simkit::Milliseconds(100);
  simkit::SimDuration sample_interval = simkit::Milliseconds(20);
  hangdoctor::TraceAnalyzerConfig analyzer;
  hangdoctor::MonitorCosts costs;
  std::string label = "UT";
};

struct CombinedDetectorConfig {
  UtilizationThresholds thresholds;
  simkit::SimDuration timeout = simkit::kPerceivableDelay;
  simkit::SimDuration period = simkit::Milliseconds(100);
  simkit::SimDuration sample_interval = simkit::Milliseconds(20);
  hangdoctor::TraceAnalyzerConfig analyzer;
  hangdoctor::MonitorCosts costs;
  std::string label = "UT+TI";
};

// TImeout-based (TI) core: flag whenever an action's response exceeds the timeout; the host
// arms the timeout check and delivers any traces collected over the hang's remainder.
class TimeoutCore {
 public:
  TimeoutCore(const hangdoctor::SessionInfo& info, TimeoutDetectorConfig config);

  void OnDispatchStart(const hangdoctor::DispatchStart& start);
  void OnDispatchEnd(const hangdoctor::DispatchEnd& end);
  void OnActionQuiesced(const hangdoctor::ActionQuiesce& quiesce);

  const std::vector<DetectionOutcome>& outcomes() const { return outcomes_; }
  const hangdoctor::OverheadMeter& overhead() const { return overhead_; }
  const TimeoutDetectorConfig& config() const { return config_; }
  const hangdoctor::DegradationStats& degradation() const { return degradation_; }
  const hangdoctor::StreamGuard& stream() const { return guard_; }

 private:
  struct LiveExecution {
    std::vector<telemetry::StackTrace> traces;
  };

  hangdoctor::SessionInfo info_;
  TimeoutDetectorConfig config_;
  hangdoctor::TraceAnalyzer analyzer_;
  hangdoctor::OverheadMeter overhead_;
  hangdoctor::StreamGuard guard_;
  hangdoctor::DegradationStats degradation_;
  std::unordered_map<int64_t, LiveExecution> live_;
  std::vector<DetectionOutcome> outcomes_;
};

// UTilization-based (UT) core: the host ticks in a point utilization sample every period;
// a threshold crossing during a dispatch flags the execution (OnUtilizationTick returns true
// when the host should begin trace collection); one outside any dispatch is a spurious
// detection that still pays for a trace burst.
class UtilizationCore {
 public:
  UtilizationCore(const hangdoctor::SessionInfo& info, UtilizationDetectorConfig config);

  void OnDispatchStart(const hangdoctor::DispatchStart& start);
  // Returns true when the host should start collecting stack traces.
  bool OnUtilizationTick(const UtilizationSample& sample);
  void OnDispatchEnd(const hangdoctor::DispatchEnd& end);
  void OnActionQuiesced(const hangdoctor::ActionQuiesce& quiesce);

  const std::vector<DetectionOutcome>& outcomes() const { return outcomes_; }
  const hangdoctor::OverheadMeter& overhead() const { return overhead_; }
  const UtilizationDetectorConfig& config() const { return config_; }
  const hangdoctor::DegradationStats& degradation() const { return degradation_; }
  const hangdoctor::StreamGuard& stream() const { return guard_; }
  int64_t samples_taken() const { return samples_taken_; }
  int64_t spurious_detections() const { return spurious_; }

 private:
  struct LiveExecution {
    bool flagged = false;
    std::vector<telemetry::StackTrace> traces;
  };

  hangdoctor::SessionInfo info_;
  UtilizationDetectorConfig config_;
  hangdoctor::TraceAnalyzer analyzer_;
  hangdoctor::OverheadMeter overhead_;
  hangdoctor::StreamGuard guard_;
  hangdoctor::DegradationStats degradation_;
  std::unordered_map<int64_t, LiveExecution> live_;
  std::vector<DetectionOutcome> outcomes_;
  int64_t dispatching_execution_ = -1;  // execution whose event is currently dispatching
  int64_t samples_taken_ = 0;
  int64_t spurious_ = 0;
};

// UT+TI core: utilization is sampled only during confirmed hangs (the host's timeout check
// fires first); a threshold crossing flags the hanging execution and starts traces.
class CombinedCore {
 public:
  CombinedCore(const hangdoctor::SessionInfo& info, CombinedDetectorConfig config);

  void OnDispatchStart(const hangdoctor::DispatchStart& start);
  // A windowed sample taken while `execution_id` hangs; returns true when the host should
  // start collecting stack traces.
  bool OnHangSample(int64_t execution_id, const UtilizationSample& sample);
  void OnDispatchEnd(const hangdoctor::DispatchEnd& end);
  void OnActionQuiesced(const hangdoctor::ActionQuiesce& quiesce);

  const std::vector<DetectionOutcome>& outcomes() const { return outcomes_; }
  const hangdoctor::OverheadMeter& overhead() const { return overhead_; }
  const CombinedDetectorConfig& config() const { return config_; }
  const hangdoctor::DegradationStats& degradation() const { return degradation_; }
  const hangdoctor::StreamGuard& stream() const { return guard_; }

 private:
  struct LiveExecution {
    bool flagged = false;
    std::vector<telemetry::StackTrace> traces;
  };

  hangdoctor::SessionInfo info_;
  CombinedDetectorConfig config_;
  hangdoctor::TraceAnalyzer analyzer_;
  hangdoctor::OverheadMeter overhead_;
  hangdoctor::StreamGuard guard_;
  hangdoctor::DegradationStats degradation_;
  std::unordered_map<int64_t, LiveExecution> live_;
  std::vector<DetectionOutcome> outcomes_;
};

}  // namespace baselines

#endif  // SRC_BASELINES_DETECTOR_CORES_H_
