#include "src/workload/fleet.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <set>
#include <stdexcept>
#include <string>

#include "src/simkit/rng.h"
#include "src/simkit/thread_pool.h"

namespace workload {

uint64_t FleetSeed(uint64_t fleet_seed, uint64_t job_index) {
  // Master stream tagged 'flt'; one fork per job index. Forking (rather than seed + index
  // arithmetic) keeps neighbouring jobs' streams statistically independent.
  simkit::Rng master(fleet_seed, /*stream=*/0x666c74ULL);
  return master.Fork(job_index).NextU64();
}

FleetJobResult RunFleetJob(const FleetJob& job) {
  FleetJobResult result;
  if (job.spec == nullptr) {
    throw std::invalid_argument("FleetJob.spec is null");
  }
  // Private database copy: jobs never share mutable state, so a job's discoveries (and any
  // behaviour conditioned on them) cannot depend on which other job finished first.
  hangdoctor::BlockingApiDatabase database;
  if (job.known_db != nullptr) {
    database = *job.known_db;
  }
  SingleAppHarness harness(job.profile, job.spec, job.seed);
  hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(), job.doctor, &database,
                                /*fleet_report=*/nullptr, job.device_id);
  harness.RunUserSession(job.session, job.user);

  result.stats = ScoreHangDoctor(harness.truth(), doctor.log());
  result.usage = harness.Usage();
  result.overhead_pct =
      doctor.overhead().OverheadPercent(result.usage.cpu, result.usage.bytes);
  result.stats.overhead_pct = result.overhead_pct;
  result.report = doctor.local_report();
  result.discovered = database.discovered();
  result.stack_samples = doctor.stack_samples_taken();
  result.ok = true;
  return result;
}

FleetSummary RunFleet(std::span<const FleetJob> jobs, const FleetOptions& options) {
  FleetSummary summary;
  summary.jobs.resize(jobs.size());

  {
    simkit::ThreadPool pool(options.jobs);
    for (size_t i = 0; i < jobs.size(); ++i) {
      const FleetJob* job = &jobs[i];
      FleetJobResult* slot = &summary.jobs[i];
      pool.Submit([job, slot]() {
        // A throwing job fails only its own slot; the worker (and the other jobs) carry on.
        try {
          *slot = RunFleetJob(*job);
        } catch (const std::exception& e) {
          slot->ok = false;
          slot->error = e.what();
        } catch (...) {
          slot->ok = false;
          slot->error = "unknown exception";
        }
      });
    }
    pool.Wait();
  }

  // Fold in job-index order. DetectionStats addition is commutative and HangBugReport::Merge
  // is keyed, but fixing the order makes bit-identical output trivially true rather than a
  // property to re-audit every time a field is added.
  std::set<std::string> discovered;
  for (const FleetJobResult& result : summary.jobs) {
    if (!result.ok) {
      ++summary.failed;
      continue;
    }
    summary.merged_stats += result.stats;
    summary.merged_report.Merge(result.report);
    discovered.insert(result.discovered.begin(), result.discovered.end());
  }
  summary.discovered.assign(discovered.begin(), discovered.end());
  return summary;
}

hangdoctor::HangBugReport FleetSummary::MergeReports(size_t begin, size_t end) const {
  hangdoctor::HangBugReport merged;
  for (size_t i = begin; i < end && i < jobs.size(); ++i) {
    if (jobs[i].ok) {
      merged.Merge(jobs[i].report);
    }
  }
  return merged;
}

int32_t ResolveJobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      int value = std::atoi(arg + 7);
      if (value > 0) {
        return value;
      }
    }
  }
  return simkit::ThreadPool::DefaultJobCount();
}

}  // namespace workload
