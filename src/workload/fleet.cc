#include "src/workload/fleet.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "src/hangdoctor/session_stream.h"
#include "src/hosts/replay_host.h"
#include "src/hosts/session_log.h"
#include "src/simkit/rng.h"
#include "src/simkit/thread_pool.h"

namespace workload {

uint64_t FleetSeed(uint64_t fleet_seed, uint64_t job_index) {
  // Master stream tagged 'flt'; one fork per job index. Forking (rather than seed + index
  // arithmetic) keeps neighbouring jobs' streams statistically independent.
  simkit::Rng master(fleet_seed, /*stream=*/0x666c74ULL);
  return master.Fork(job_index).NextU64();
}

namespace {

// Shared per-job setup: identity echo, recorder, fault plan. Recording is a passive tap on
// the Telemetry Host SPI — it never feeds anything back, so a recorded job's results are
// bit-identical to an unrecorded one.
void StampIdentity(const FleetJob& job, FleetJobResult* result) {
  result->app_package = job.spec->package;
  result->device_id = job.device_id;
  result->seed = job.seed;
}

std::unique_ptr<hangdoctor::SessionLogWriter> MakeRecorder(const FleetJob& job) {
  if (job.record_path.empty()) {
    return nullptr;
  }
  auto recorder = std::make_unique<hangdoctor::SessionLogWriter>(job.record_path, job.doctor);
  if (!recorder->ok()) {
    throw std::runtime_error("cannot open session log for writing: " + job.record_path);
  }
  if (job.faults.hdsl_fail_after >= 0) {
    recorder->SetFailAfter(job.faults.hdsl_fail_after);
  }
  return recorder;
}

// The fault plan splits off the same job seed the harness uses; FaultPlan forks its own
// tagged streams internally, so the app/user randomness is untouched and the fault
// sequence is identical at any --jobs=N.
faultsim::FaultPlan MakePlan(const FleetJob& job) {
  if (job.faults.enabled()) {
    return faultsim::FaultPlan(job.faults, job.seed);
  }
  return {};
}

void FinishRecorder(hangdoctor::SessionLogWriter* recorder, const FleetJob& job,
                    FleetJobResult* result) {
  if (recorder == nullptr) {
    return;
  }
  recorder->WriteTraceUsage(result->usage.cpu, result->usage.bytes);
  recorder->Finish();
  if (!recorder->ok()) {
    // An injected torn write (or a genuinely full disk): the run itself is fine, the
    // recording is not. Surface it instead of throwing so the fleet's other results and
    // this job's detections survive.
    result->record_ok = false;
    result->record_error = "session log short write: " + job.record_path;
  }
}

// Everything the two-phase fleet must keep alive between device-side simulation (phase A)
// and backend ingest (phase B): the harness (its SymbolTable is referenced, not copied, by
// every captured record) plus the captured post-injection stream and its open/close framing.
struct CapturedJob {
  std::unique_ptr<SingleAppHarness> harness;
  hangdoctor::SpiStreamRecorder stream;
  hangdoctor::SpiPayload open_payload;
  hangdoctor::SpiPayload close_payload;
};

// RunFleetJob's body, optionally tapping the SPI stream into `capture` (the two-phase
// fleet's phase A). The tap is passive and sits downstream of the fault injector, so a
// captured run's own results — and its recording, when any — are bit-identical to an
// untapped one.
FleetJobResult RunFleetJobImpl(const FleetJob& job, CapturedJob* capture) {
  FleetJobResult result;
  if (job.spec == nullptr) {
    throw std::invalid_argument("FleetJob.spec is null");
  }
  StampIdentity(job, &result);
  // Private overlay over the shared (immutable) seed: jobs never share *mutable* state, so a
  // job's discoveries (and any behaviour conditioned on them) cannot depend on which other
  // job finished first — and nobody pays a per-job copy of the catalog.
  hangdoctor::BlockingApiDatabase database;
  database.SetBase(job.known_db);
  std::unique_ptr<hangdoctor::SessionLogWriter> recorder = MakeRecorder(job);
  std::unique_ptr<SingleAppHarness> owned;
  if (capture != nullptr) {
    capture->harness = std::make_unique<SingleAppHarness>(job.profile, job.spec, job.seed);
  } else {
    owned = std::make_unique<SingleAppHarness>(job.profile, job.spec, job.seed);
  }
  SingleAppHarness& harness = capture != nullptr ? *capture->harness : *owned;
  hangdoctor::TelemetrySink* sink = recorder.get();
  std::unique_ptr<hangdoctor::TeeSink> tee;
  if (capture != nullptr) {
    tee = std::make_unique<hangdoctor::TeeSink>(recorder.get(), &capture->stream);
    sink = tee.get();
  }
  hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(), job.doctor, &database,
                                /*fleet_report=*/nullptr, job.device_id, sink, MakePlan(job));
  harness.RunUserSession(job.session, job.user);

  result.stats = ScoreHangDoctor(harness.truth(), doctor.log());
  result.usage = harness.Usage();
  result.overhead_pct =
      doctor.overhead().OverheadPercent(result.usage.cpu, result.usage.bytes);
  result.stats.overhead_pct = result.overhead_pct;
  result.report = doctor.local_report();
  result.discovered = database.discovered();
  result.stack_samples = doctor.stack_samples_taken();
  result.degradation = doctor.core().degradation();
  result.stream_ok = doctor.core().stream().ok();
  result.stream_error = doctor.core().stream().error();
  result.ok = true;
  FinishRecorder(recorder.get(), job, &result);
  if (capture != nullptr) {
    // Frame the captured stream for service ingest. The info (and its symbols pointer) come
    // from the recorder's OnSessionStart; the harness above keeps the pointee alive.
    capture->open_payload.kind = hangdoctor::SpiPayload::Kind::kSessionOpen;
    capture->open_payload.info = capture->stream.info();
    capture->open_payload.config = job.doctor;
    capture->close_payload.kind = hangdoctor::SpiPayload::Kind::kSessionClose;
  }
  return result;
}

}  // namespace

FleetJobResult RunFleetJob(const FleetJob& job) {
  return RunFleetJobImpl(job, /*capture=*/nullptr);
}

namespace {

// The service-mode worker body: same job, but its detector lives inside the shared
// DetectorService as session `id` — the per-session arena replaces the private core — and
// the result is harvested through Close. Bit-identical to RunFleetJob because detection is
// per-session pure and the session id is the job index (so merges fold in the same order).
FleetJobResult RunServiceFleetJob(const FleetJob& job, hangdoctor::DetectorService* service,
                                  uint64_t id) {
  FleetJobResult result;
  if (job.spec == nullptr) {
    throw std::invalid_argument("FleetJob.spec is null");
  }
  StampIdentity(job, &result);
  std::unique_ptr<hangdoctor::SessionLogWriter> recorder = MakeRecorder(job);
  SingleAppHarness harness(job.profile, job.spec, job.seed);
  telemetry::SessionId session_id{id};
  try {
    hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(), job.doctor, service,
                                  session_id, job.device_id, recorder.get(), MakePlan(job));
    harness.RunUserSession(job.session, job.user);

    hangdoctor::SessionResult session = service->Close(session_id);
    result.stats = ScoreHangDoctor(harness.truth(), session.log);
    result.usage = harness.Usage();
    result.overhead_pct =
        session.overhead.OverheadPercent(result.usage.cpu, result.usage.bytes);
    result.stats.overhead_pct = result.overhead_pct;
    result.report = std::move(session.report);
    result.discovered = std::move(session.discovered);
    result.stack_samples = session.stack_samples;
    result.degradation = session.degradation;
    result.stream_ok = session.stream_ok;
    result.stream_error = std::move(session.stream_error);
    result.kb = session.kb;
    result.ok = true;
  } catch (...) {
    // The session may still be live (the harness threw mid-run); free its arena so one bad
    // job cannot leak service memory. Discard is idempotent, so a Close that already
    // happened — or an Open that never did — is fine.
    service->Discard(session_id);
    throw;
  }
  FinishRecorder(recorder.get(), job, &result);
  return result;
}

}  // namespace

FleetJobResult ReplayFleetJob(const std::string& path,
                              const hangdoctor::BlockingApiDatabase* known_db) {
  FleetJobResult result;
  hangdoctor::BlockingApiDatabase database;
  database.SetBase(known_db);
  std::string error;
  std::unique_ptr<hangdoctor::ReplaySession> session =
      hangdoctor::ReplaySessionLog(path, &error, &database);
  if (session == nullptr) {
    throw std::runtime_error("replay of " + path + " failed: " + error);
  }
  const hangdoctor::DetectorCore& core = session->core();
  // Identity as far as the log carries it (the harness seed is not recorded).
  result.app_package = session->log().info.app_package;
  result.device_id = session->log().info.device_id;
  // Ground truth is not recorded, so TP/FP/FN scoring is unavailable offline; only the
  // overhead percentage (recorded usage footer) is reproduced.
  result.usage.cpu = session->log().usage_cpu;
  result.usage.bytes = session->log().usage_bytes;
  result.overhead_pct = session->OverheadPercent();
  result.stats.overhead_pct = result.overhead_pct;
  result.report = core.local_report();
  result.discovered = database.discovered();
  result.stack_samples = core.stack_samples_taken();
  result.degradation = core.degradation();
  result.stream_ok = core.stream().ok();
  result.stream_error = core.stream().error();
  result.ok = true;
  return result;
}

namespace {

// Fan-out half of RunFleet/ReplayFleet: `run(i)` fills job i's slot across the pool.
template <typename RunJob>
void RunFleetJobs(FleetSummary* summary, size_t count, const FleetOptions& options,
                  RunJob run) {
  summary->jobs.resize(count);
  simkit::ThreadPool pool(options.jobs);
  for (size_t i = 0; i < count; ++i) {
    FleetJobResult* slot = &summary->jobs[i];
    pool.Submit([i, slot, &run]() {
      // A throwing job fails only its own slot; the worker (and the other jobs) carry on.
      try {
        *slot = run(i);
      } catch (const std::exception& e) {
        slot->ok = false;
        slot->error = e.what();
      } catch (...) {
        slot->ok = false;
        slot->error = "unknown exception";
      }
    });
  }
  pool.Wait();
}

// Merge half: fold in job-index order. DetectionStats addition is commutative and
// HangBugReport::Merge is keyed, but fixing the order makes bit-identical output trivially
// true rather than a property to re-audit every time a field is added.
void FoldFleetSummary(FleetSummary* summary) {
  std::set<std::string> discovered;
  for (const FleetJobResult& result : summary->jobs) {
    if (!result.ok) {
      ++summary->failed;
      continue;
    }
    summary->merged_stats += result.stats;
    summary->merged_report.Merge(result.report);
    discovered.insert(result.discovered.begin(), result.discovered.end());
  }
  summary->discovered.assign(discovered.begin(), discovered.end());
}

template <typename RunJob>
FleetSummary RunFleetWith(size_t count, const FleetOptions& options, RunJob run) {
  FleetSummary summary;
  RunFleetJobs(&summary, count, options, run);
  FoldFleetSummary(&summary);
  return summary;
}

int32_t ResolveServiceShards(const FleetOptions& options) {
  return options.shards > 0
             ? options.shards
             : (options.jobs > 0 ? options.jobs : simkit::ThreadPool::DefaultJobCount());
}

// Service mode holds ONE seed catalog (ServiceOptions.seed_db / the knowledge base's seed),
// so every job of the call must agree on its known_db pointer — including agreeing on null.
const hangdoctor::BlockingApiDatabase* UniformKnownDb(std::span<const FleetJob> jobs) {
  const hangdoctor::BlockingApiDatabase* known_db =
      jobs.empty() ? nullptr : jobs.front().known_db;
  for (const FleetJob& job : jobs) {
    if (job.known_db != known_db) {
      throw std::invalid_argument(
          "service-mode RunFleet requires every FleetJob to share one known_db (use "
          "FleetOptions.service = false for per-job catalogs)");
    }
  }
  return known_db;
}

// Common service configuration for both service paths: one seed, or one knowledge base
// carrying the seed plus the epoch schedule.
hangdoctor::ServiceOptions MakeServiceOptions(std::span<const FleetJob> jobs,
                                              const FleetOptions& options,
                                              hangdoctor::KnowledgeBase* kb) {
  hangdoctor::ServiceOptions service_options;
  service_options.shards = ResolveServiceShards(options);
  if (kb != nullptr) {
    service_options.knowledge_base = kb;
    service_options.kb_epoch_sessions = options.kb_epoch_sessions;
  } else {
    service_options.seed_db = UniformKnownDb(jobs);
  }
  return service_options;
}

// The two-phase fleet (FleetOptions::threads >= 1): simulate device-side while capturing
// each session's post-injection SPI stream, then push every captured session through the
// service's pipelined ingest and let the service-harvested results replace the per-job ones.
// Per-session purity makes the replacement invisible — phase B recomputes exactly what phase
// A's private cores concluded — which is the point: the *pipeline* is on the fleet path, and
// any divergence is a determinism bug the equivalence tests catch.
FleetSummary RunPipelinedFleet(std::span<const FleetJob> jobs, const FleetOptions& options,
                               hangdoctor::KnowledgeBase* kb) {
  FleetSummary summary;
  std::vector<std::unique_ptr<CapturedJob>> captures(jobs.size());

  // Phase A: device-side simulation with a passive stream tap per job.
  for (size_t i = 0; i < jobs.size(); ++i) {
    captures[i] = std::make_unique<CapturedJob>();
  }
  RunFleetJobs(&summary, jobs.size(), options, [&jobs, &captures](size_t i) {
    return RunFleetJobImpl(jobs[i], captures[i].get());
  });
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (!summary.jobs[i].ok) {
      captures[i].reset();  // a failed job captured nothing worth ingesting
    }
  }

  // Phase B: backend ingest. One producer per ingest thread (capped by the job count); job i
  // belongs to producer i % producers, and every session's records are pushed in order by
  // exactly one producer — the service's determinism contract.
  hangdoctor::ServiceOptions service_options = MakeServiceOptions(jobs, options, kb);
  service_options.threads = options.threads;
  hangdoctor::DetectorService service(service_options);
  size_t producers = std::min<size_t>(static_cast<size_t>(options.threads), jobs.size());
  producers = std::max<size_t>(producers, 1);
  {
    std::vector<std::thread> pushers;
    pushers.reserve(producers);
    for (size_t p = 0; p < producers; ++p) {
      pushers.emplace_back([p, producers, &jobs, &captures, &service]() {
        for (size_t i = p; i < jobs.size(); i += producers) {
          CapturedJob* capture = captures[i].get();
          if (capture == nullptr) {
            continue;
          }
          hangdoctor::DetectorService::Ingestor ingestor(&service);
          telemetry::SessionId id{static_cast<uint64_t>(i)};
          ingestor.Push({id, &capture->open_payload});
          for (const hangdoctor::SpiPayload& payload : capture->stream.records()) {
            ingestor.Push({id, &payload});
          }
          ingestor.Push({id, &capture->close_payload});
        }  // the ingestor's destructor flushes its partial batches
      });
    }
    for (std::thread& pusher : pushers) {
      pusher.join();
    }
  }

  // Harvest at the barrier; session id == job index, so results land back on their jobs.
  for (hangdoctor::SessionResult& session : service.DrainClosed()) {
    size_t i = static_cast<size_t>(session.id.value);
    FleetJobResult& result = summary.jobs[i];
    result.stats = ScoreHangDoctor(captures[i]->harness->truth(), session.log);
    result.overhead_pct =
        session.overhead.OverheadPercent(result.usage.cpu, result.usage.bytes);
    result.stats.overhead_pct = result.overhead_pct;
    result.report = std::move(session.report);
    result.discovered = std::move(session.discovered);
    result.stack_samples = session.stack_samples;
    result.degradation = session.degradation;
    result.stream_ok = session.stream_ok;
    result.stream_error = std::move(session.stream_error);
    result.kb = session.kb;
  }
  for (hangdoctor::IngestError& error : service.TakeIngestErrors()) {
    FleetJobResult& result = summary.jobs[static_cast<size_t>(error.session.value)];
    result.ok = false;
    result.error = "service ingest: " + error.message;
  }
  FoldFleetSummary(&summary);
  return summary;
}

}  // namespace

FleetSummary RunFleet(std::span<const FleetJob> jobs, const FleetOptions& options) {
  if (options.threads < 0) {
    throw std::invalid_argument("FleetOptions.threads must be >= 0, got " +
                                std::to_string(options.threads));
  }
  if (options.kb_epoch_sessions < 0) {
    throw std::invalid_argument("FleetOptions.kb_epoch_sessions must be >= 0, got " +
                                std::to_string(options.kb_epoch_sessions));
  }
  if (!options.service) {
    // The per-job oracle: one private DetectorCore per job. Kept for the equivalence tests
    // that pin service mode (and the shared knowledge base) against it.
    return RunFleetWith(jobs.size(), options,
                        [&jobs](size_t i) { return RunFleetJob(jobs[i]); });
  }
  std::unique_ptr<hangdoctor::KnowledgeBase> kb;
  if (options.shared_kb) {
    const hangdoctor::BlockingApiDatabase* seed = UniformKnownDb(jobs);
    kb = std::make_unique<hangdoctor::KnowledgeBase>(
        seed != nullptr ? *seed : hangdoctor::BlockingApiDatabase{});
  }
  FleetSummary summary;
  if (options.threads > 0) {
    summary = RunPipelinedFleet(jobs, options, kb.get());
  } else {
    hangdoctor::DetectorService service(MakeServiceOptions(jobs, options, kb.get()));
    summary = RunFleetWith(jobs.size(), options, [&jobs, &service](size_t i) {
      return RunServiceFleetJob(jobs[i], &service, static_cast<uint64_t>(i));
    });
  }
  if (kb != nullptr) {
    // Final epoch: everything the last sessions confirmed becomes part of the published
    // state before the totals are read.
    kb->Publish();
    summary.kb = kb->TotalStats();
  }
  return summary;
}

FleetSummary ReplayFleet(std::span<const std::string> paths, const FleetOptions& options,
                         const hangdoctor::BlockingApiDatabase* known_db) {
  return RunFleetWith(paths.size(), options, [&paths, known_db](size_t i) {
    return ReplayFleetJob(paths[i], known_db);
  });
}

std::string FleetJobResult::Describe() const {
  std::string line =
      app_package + " device " + std::to_string(device_id) + " seed " + std::to_string(seed) + ":";
  if (!ok) {
    return line + " FAILED (" + error + ")";
  }
  std::string notes;
  if (degradation.Degraded()) {
    notes += " degraded(opens_failed=" + std::to_string(degradation.counter_open_failures) +
             " retries=" + std::to_string(degradation.counter_retries) +
             " invalid_windows=" + std::to_string(degradation.invalid_counter_windows) +
             " degraded_checks=" + std::to_string(degradation.degraded_checks) +
             " empty_traces=" + std::to_string(degradation.empty_trace_windows) +
             " dropped=" + std::to_string(degradation.dropped_records) + ")";
  }
  if (!stream_ok) {
    notes += " stream_error(" + stream_error + ")";
  }
  if (!record_ok) {
    notes += " torn_recording";
  }
  if (notes.empty()) {
    notes = " ok";
  }
  return line + notes;
}

hangdoctor::HangBugReport FleetSummary::MergeReports(size_t begin, size_t end) const {
  hangdoctor::HangBugReport merged;
  for (size_t i = begin; i < end && i < jobs.size(); ++i) {
    if (jobs[i].ok) {
      merged.Merge(jobs[i].report);
    }
  }
  return merged;
}

namespace {

std::string FlagValue(int argc, char** argv, const char* prefix) {
  size_t length = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, length) == 0) {
      return std::string(argv[i] + length);
    }
  }
  return "";
}

}  // namespace

int32_t ResolveJobs(int argc, char** argv) {
  std::string value = FlagValue(argc, argv, "--jobs=");
  if (!value.empty()) {
    int jobs = std::atoi(value.c_str());
    if (jobs > 0) {
      return jobs;
    }
  }
  return simkit::ThreadPool::DefaultJobCount();
}

int32_t ResolveShards(int argc, char** argv) {
  std::string value = FlagValue(argc, argv, "--shards=");
  if (!value.empty()) {
    int shards = std::atoi(value.c_str());
    if (shards > 0) {
      return shards;
    }
  }
  return 0;
}

int32_t ResolveThreads(int argc, char** argv) {
  std::string value = FlagValue(argc, argv, "--threads=");
  if (value.empty()) {
    return 0;
  }
  int threads = std::atoi(value.c_str());
  if (threads < 1) {
    throw std::invalid_argument("--threads must be >= 1, got " + value);
  }
  return threads;
}

int64_t ResolveKbEpoch(int argc, char** argv) {
  std::string value = FlagValue(argc, argv, "--kb-epoch=");
  if (value.empty()) {
    return FleetOptions{}.kb_epoch_sessions;
  }
  int64_t epoch = std::atoll(value.c_str());
  if (epoch < 0 || (epoch == 0 && value != "0")) {
    throw std::invalid_argument("--kb-epoch must be >= 0, got " + value);
  }
  return epoch;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

std::string ResolveRecordDir(int argc, char** argv) {
  return FlagValue(argc, argv, "--record=");
}

std::string ResolveReplayDir(int argc, char** argv) {
  return FlagValue(argc, argv, "--replay=");
}

faultsim::FaultProfile ResolveFaultProfile(int argc, char** argv) {
  std::string value = FlagValue(argc, argv, "--faults=");
  if (value.empty()) {
    return faultsim::FaultProfile{};
  }
  return faultsim::FaultProfile::Named(value);
}

}  // namespace workload
