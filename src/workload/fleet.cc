#include "src/workload/fleet.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/hosts/replay_host.h"
#include "src/hosts/session_log.h"
#include "src/simkit/rng.h"
#include "src/simkit/thread_pool.h"

namespace workload {

uint64_t FleetSeed(uint64_t fleet_seed, uint64_t job_index) {
  // Master stream tagged 'flt'; one fork per job index. Forking (rather than seed + index
  // arithmetic) keeps neighbouring jobs' streams statistically independent.
  simkit::Rng master(fleet_seed, /*stream=*/0x666c74ULL);
  return master.Fork(job_index).NextU64();
}

namespace {

// Shared per-job setup: identity echo, recorder, fault plan. Recording is a passive tap on
// the Telemetry Host SPI — it never feeds anything back, so a recorded job's results are
// bit-identical to an unrecorded one.
void StampIdentity(const FleetJob& job, FleetJobResult* result) {
  result->app_package = job.spec->package;
  result->device_id = job.device_id;
  result->seed = job.seed;
}

std::unique_ptr<hangdoctor::SessionLogWriter> MakeRecorder(const FleetJob& job) {
  if (job.record_path.empty()) {
    return nullptr;
  }
  auto recorder = std::make_unique<hangdoctor::SessionLogWriter>(job.record_path, job.doctor);
  if (!recorder->ok()) {
    throw std::runtime_error("cannot open session log for writing: " + job.record_path);
  }
  if (job.faults.hdsl_fail_after >= 0) {
    recorder->SetFailAfter(job.faults.hdsl_fail_after);
  }
  return recorder;
}

// The fault plan splits off the same job seed the harness uses; FaultPlan forks its own
// tagged streams internally, so the app/user randomness is untouched and the fault
// sequence is identical at any --jobs=N.
faultsim::FaultPlan MakePlan(const FleetJob& job) {
  if (job.faults.enabled()) {
    return faultsim::FaultPlan(job.faults, job.seed);
  }
  return {};
}

void FinishRecorder(hangdoctor::SessionLogWriter* recorder, const FleetJob& job,
                    FleetJobResult* result) {
  if (recorder == nullptr) {
    return;
  }
  recorder->WriteTraceUsage(result->usage.cpu, result->usage.bytes);
  recorder->Finish();
  if (!recorder->ok()) {
    // An injected torn write (or a genuinely full disk): the run itself is fine, the
    // recording is not. Surface it instead of throwing so the fleet's other results and
    // this job's detections survive.
    result->record_ok = false;
    result->record_error = "session log short write: " + job.record_path;
  }
}

}  // namespace

FleetJobResult RunFleetJob(const FleetJob& job) {
  FleetJobResult result;
  if (job.spec == nullptr) {
    throw std::invalid_argument("FleetJob.spec is null");
  }
  StampIdentity(job, &result);
  // Private database copy: jobs never share mutable state, so a job's discoveries (and any
  // behaviour conditioned on them) cannot depend on which other job finished first.
  hangdoctor::BlockingApiDatabase database;
  if (job.known_db != nullptr) {
    database = *job.known_db;
  }
  std::unique_ptr<hangdoctor::SessionLogWriter> recorder = MakeRecorder(job);
  SingleAppHarness harness(job.profile, job.spec, job.seed);
  hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(), job.doctor, &database,
                                /*fleet_report=*/nullptr, job.device_id, recorder.get(),
                                MakePlan(job));
  harness.RunUserSession(job.session, job.user);

  result.stats = ScoreHangDoctor(harness.truth(), doctor.log());
  result.usage = harness.Usage();
  result.overhead_pct =
      doctor.overhead().OverheadPercent(result.usage.cpu, result.usage.bytes);
  result.stats.overhead_pct = result.overhead_pct;
  result.report = doctor.local_report();
  result.discovered = database.discovered();
  result.stack_samples = doctor.stack_samples_taken();
  result.degradation = doctor.core().degradation();
  result.stream_ok = doctor.core().stream().ok();
  result.stream_error = doctor.core().stream().error();
  result.ok = true;
  FinishRecorder(recorder.get(), job, &result);
  return result;
}

namespace {

// The service-mode worker body: same job, but its detector lives inside the shared
// DetectorService as session `id` — the per-session arena replaces the private core — and
// the result is harvested through Close. Bit-identical to RunFleetJob because detection is
// per-session pure and the session id is the job index (so merges fold in the same order).
FleetJobResult RunServiceFleetJob(const FleetJob& job, hangdoctor::DetectorService* service,
                                  uint64_t id) {
  FleetJobResult result;
  if (job.spec == nullptr) {
    throw std::invalid_argument("FleetJob.spec is null");
  }
  StampIdentity(job, &result);
  std::unique_ptr<hangdoctor::SessionLogWriter> recorder = MakeRecorder(job);
  SingleAppHarness harness(job.profile, job.spec, job.seed);
  telemetry::SessionId session_id{id};
  try {
    hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(), job.doctor, service,
                                  session_id, job.known_db, job.device_id, recorder.get(),
                                  MakePlan(job));
    harness.RunUserSession(job.session, job.user);

    hangdoctor::SessionResult session = service->Close(session_id);
    result.stats = ScoreHangDoctor(harness.truth(), session.log);
    result.usage = harness.Usage();
    result.overhead_pct =
        session.overhead.OverheadPercent(result.usage.cpu, result.usage.bytes);
    result.stats.overhead_pct = result.overhead_pct;
    result.report = std::move(session.report);
    result.discovered = std::move(session.discovered);
    result.stack_samples = session.stack_samples;
    result.degradation = session.degradation;
    result.stream_ok = session.stream_ok;
    result.stream_error = std::move(session.stream_error);
    result.ok = true;
  } catch (...) {
    // The session may still be live (the harness threw mid-run); free its arena so one bad
    // job cannot leak service memory. Discard is idempotent, so a Close that already
    // happened — or an Open that never did — is fine.
    service->Discard(session_id);
    throw;
  }
  FinishRecorder(recorder.get(), job, &result);
  return result;
}

}  // namespace

FleetJobResult ReplayFleetJob(const std::string& path,
                              const hangdoctor::BlockingApiDatabase* known_db) {
  FleetJobResult result;
  hangdoctor::BlockingApiDatabase database;
  if (known_db != nullptr) {
    database = *known_db;
  }
  std::string error;
  std::unique_ptr<hangdoctor::ReplaySession> session =
      hangdoctor::ReplaySessionLog(path, &error, &database);
  if (session == nullptr) {
    throw std::runtime_error("replay of " + path + " failed: " + error);
  }
  const hangdoctor::DetectorCore& core = session->core();
  // Identity as far as the log carries it (the harness seed is not recorded).
  result.app_package = session->log().info.app_package;
  result.device_id = session->log().info.device_id;
  // Ground truth is not recorded, so TP/FP/FN scoring is unavailable offline; only the
  // overhead percentage (recorded usage footer) is reproduced.
  result.usage.cpu = session->log().usage_cpu;
  result.usage.bytes = session->log().usage_bytes;
  result.overhead_pct = session->OverheadPercent();
  result.stats.overhead_pct = result.overhead_pct;
  result.report = core.local_report();
  result.discovered = database.discovered();
  result.stack_samples = core.stack_samples_taken();
  result.degradation = core.degradation();
  result.stream_ok = core.stream().ok();
  result.stream_error = core.stream().error();
  result.ok = true;
  return result;
}

namespace {

// Shared fan-out/merge body of RunFleet and ReplayFleet: `run(i)` produces job i's result.
template <typename RunJob>
FleetSummary RunFleetWith(size_t count, const FleetOptions& options, RunJob run) {
  FleetSummary summary;
  summary.jobs.resize(count);

  {
    simkit::ThreadPool pool(options.jobs);
    for (size_t i = 0; i < count; ++i) {
      FleetJobResult* slot = &summary.jobs[i];
      pool.Submit([i, slot, &run]() {
        // A throwing job fails only its own slot; the worker (and the other jobs) carry on.
        try {
          *slot = run(i);
        } catch (const std::exception& e) {
          slot->ok = false;
          slot->error = e.what();
        } catch (...) {
          slot->ok = false;
          slot->error = "unknown exception";
        }
      });
    }
    pool.Wait();
  }

  // Fold in job-index order. DetectionStats addition is commutative and HangBugReport::Merge
  // is keyed, but fixing the order makes bit-identical output trivially true rather than a
  // property to re-audit every time a field is added.
  std::set<std::string> discovered;
  for (const FleetJobResult& result : summary.jobs) {
    if (!result.ok) {
      ++summary.failed;
      continue;
    }
    summary.merged_stats += result.stats;
    summary.merged_report.Merge(result.report);
    discovered.insert(result.discovered.begin(), result.discovered.end());
  }
  summary.discovered.assign(discovered.begin(), discovered.end());
  return summary;
}

}  // namespace

FleetSummary RunFleet(std::span<const FleetJob> jobs, const FleetOptions& options) {
  if (!options.service) {
    // The per-job oracle: one private DetectorCore per job. Kept for the equivalence tests
    // that pin service mode against it.
    return RunFleetWith(jobs.size(), options,
                        [&jobs](size_t i) { return RunFleetJob(jobs[i]); });
  }
  int32_t shards = options.shards > 0
                       ? options.shards
                       : (options.jobs > 0 ? options.jobs : simkit::ThreadPool::DefaultJobCount());
  hangdoctor::DetectorService service(hangdoctor::ServiceOptions{shards});
  return RunFleetWith(jobs.size(), options, [&jobs, &service](size_t i) {
    return RunServiceFleetJob(jobs[i], &service, static_cast<uint64_t>(i));
  });
}

FleetSummary ReplayFleet(std::span<const std::string> paths, const FleetOptions& options,
                         const hangdoctor::BlockingApiDatabase* known_db) {
  return RunFleetWith(paths.size(), options, [&paths, known_db](size_t i) {
    return ReplayFleetJob(paths[i], known_db);
  });
}

std::string FleetJobResult::Describe() const {
  std::string line =
      app_package + " device " + std::to_string(device_id) + " seed " + std::to_string(seed) + ":";
  if (!ok) {
    return line + " FAILED (" + error + ")";
  }
  std::string notes;
  if (degradation.Degraded()) {
    notes += " degraded(opens_failed=" + std::to_string(degradation.counter_open_failures) +
             " retries=" + std::to_string(degradation.counter_retries) +
             " invalid_windows=" + std::to_string(degradation.invalid_counter_windows) +
             " degraded_checks=" + std::to_string(degradation.degraded_checks) +
             " empty_traces=" + std::to_string(degradation.empty_trace_windows) +
             " dropped=" + std::to_string(degradation.dropped_records) + ")";
  }
  if (!stream_ok) {
    notes += " stream_error(" + stream_error + ")";
  }
  if (!record_ok) {
    notes += " torn_recording";
  }
  if (notes.empty()) {
    notes = " ok";
  }
  return line + notes;
}

hangdoctor::HangBugReport FleetSummary::MergeReports(size_t begin, size_t end) const {
  hangdoctor::HangBugReport merged;
  for (size_t i = begin; i < end && i < jobs.size(); ++i) {
    if (jobs[i].ok) {
      merged.Merge(jobs[i].report);
    }
  }
  return merged;
}

namespace {

std::string FlagValue(int argc, char** argv, const char* prefix) {
  size_t length = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, length) == 0) {
      return std::string(argv[i] + length);
    }
  }
  return "";
}

}  // namespace

int32_t ResolveJobs(int argc, char** argv) {
  std::string value = FlagValue(argc, argv, "--jobs=");
  if (!value.empty()) {
    int jobs = std::atoi(value.c_str());
    if (jobs > 0) {
      return jobs;
    }
  }
  return simkit::ThreadPool::DefaultJobCount();
}

int32_t ResolveShards(int argc, char** argv) {
  std::string value = FlagValue(argc, argv, "--shards=");
  if (!value.empty()) {
    int shards = std::atoi(value.c_str());
    if (shards > 0) {
      return shards;
    }
  }
  return 0;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

std::string ResolveRecordDir(int argc, char** argv) {
  return FlagValue(argc, argv, "--record=");
}

std::string ResolveReplayDir(int argc, char** argv) {
  return FlagValue(argc, argv, "--replay=");
}

faultsim::FaultProfile ResolveFaultProfile(int argc, char** argv) {
  std::string value = FlagValue(argc, argv, "--faults=");
  if (value.empty()) {
    return faultsim::FaultProfile{};
  }
  return faultsim::FaultProfile::Named(value);
}

}  // namespace workload
