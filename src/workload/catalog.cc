#include "src/workload/catalog.h"

namespace workload {

droidsim::AppSpec* CatalogState::NewApp(const std::string& name, const std::string& package,
                                        const std::string& category, const std::string& commit,
                                        int64_t downloads) {
  auto app = std::make_unique<droidsim::AppSpec>();
  app->name = name;
  app->package = package;
  app->category = category;
  app->commit = commit;
  app->downloads = downloads;
  owned_apps.push_back(std::move(app));
  return owned_apps.back().get();
}

Catalog::Catalog() {
  state_.apis = BuildStandardApis(&state_.registry);
  BuildStudyApps(&state_);
  BuildMotivationApps(&state_);
  BuildFillerApps(&state_);
  BuildAsyncApps(&state_);
}

std::vector<const droidsim::AppSpec*> Catalog::all_apps() const {
  std::vector<const droidsim::AppSpec*> all;
  all.insert(all.end(), state_.study.begin(), state_.study.end());
  all.insert(all.end(), state_.motivation.begin(), state_.motivation.end());
  all.insert(all.end(), state_.filler.begin(), state_.filler.end());
  return all;
}

std::vector<BugSpec> Catalog::BugsOf(const std::string& app_name) const {
  std::vector<BugSpec> bugs;
  for (const BugSpec& bug : state_.study_bugs) {
    if (bug.app_name == app_name) {
      bugs.push_back(bug);
    }
  }
  for (const BugSpec& bug : state_.motivation_bugs) {
    if (bug.app_name == app_name) {
      bugs.push_back(bug);
    }
  }
  for (const BugSpec& bug : state_.async_bugs) {
    if (bug.app_name == app_name) {
      bugs.push_back(bug);
    }
  }
  return bugs;
}

const droidsim::AppSpec* Catalog::FindApp(const std::string& name) const {
  for (const auto& app : state_.owned_apps) {
    if (app->name == name) {
      return app.get();
    }
  }
  return nullptr;
}

hangdoctor::BlockingApiDatabase Catalog::MakeKnownDatabase() const {
  hangdoctor::BlockingApiDatabase database;
  for (const droidsim::ApiSpec* spec : state_.registry.AllSpecs()) {
    if (spec->known_blocking) {
      database.SeedKnown(spec->FullName());
    }
  }
  return database;
}

}  // namespace workload
