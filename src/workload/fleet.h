// Parallel fleet experiment runner: fans a list of independent (app × device × seed) runs
// across a simkit::ThreadPool, one SingleAppHarness + HangDoctor per job, and folds the
// results into order-independent aggregates. This is the paper's Section 4 evaluation shape —
// many users running instrumented apps, their Hang Bug Reports merging fleet-wide — made
// parallel without giving up reproducibility.
//
// Determinism contract: every job is self-contained (own Phone, own Rng stream, own copy of
// the blocking-API database), results are stored index-aligned with the input jobs, and
// merges fold in job-index order. Therefore the merged DetectionStats, the merged
// HangBugReport, and each per-job result are bit-identical for any worker count
// (`FleetOptions::jobs`) and any host scheduling order. Same seeds => same results.
//
// Record/replay: a job with `record_path` set writes an HDSL session log of the exact
// telemetry its HangDoctor consumed (src/hosts/session_log.h); ReplayFleetJob re-runs a
// detector from such a log offline, with a bit-identical report and execution log. Recording
// is a passive tap, so a recorded fleet's results are bit-identical to an unrecorded one.
#ifndef SRC_WORKLOAD_FLEET_H_
#define SRC_WORKLOAD_FLEET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/faultsim/fault_plan.h"
#include "src/hosts/hang_doctor.h"
#include "src/simkit/time.h"
#include "src/workload/experiment.h"

namespace workload {

// One fleet run: one app on one simulated device for one user session.
struct FleetJob {
  const droidsim::AppSpec* spec = nullptr;  // must outlive the fleet run (catalog-owned)
  droidsim::DeviceProfile profile;
  uint64_t seed = 0;  // harness seed; use FleetSeed() when no specific seed is called for
  simkit::SimDuration session = simkit::Seconds(120);
  UserSessionConfig user;
  hangdoctor::HangDoctorConfig doctor;
  int32_t device_id = 0;  // stamped on bug-report entries (device-coverage ordering)
  // Known blocking APIs seeding the job's database; null = empty. Each job *overlays* it
  // (src/hangdoctor/blocking_api_db.h) so no mutable state is shared across workers and
  // discoveries stay deterministic regardless of which job finishes first — bit-equivalent
  // to the old per-job copy, without N copies of the catalog. Must outlive the fleet run.
  // Service mode requires every job of one RunFleet call to carry the same pointer (the
  // service holds one seed); per-job catalogs remain available via service = false.
  const hangdoctor::BlockingApiDatabase* known_db = nullptr;
  // When non-empty, write an HDSL session log of this job's telemetry stream here.
  std::string record_path;
  // Telemetry faults to inject between the host and the core (src/faultsim). The job's
  // FaultPlan is seeded from `seed`, so the fault sequence — like everything else — is a
  // pure function of (fleet_seed, job_index) and identical at any --jobs=N. The profile's
  // hdsl_fail_after budget additionally applies to this job's recorder, when any.
  faultsim::FaultProfile faults;
};

// Deterministic per-job seed: splits the fleet master stream by job index with simkit::Rng
// forking, so a fleet keyed by (fleet_seed, job_index) draws identical randomness at any
// parallelism level, and adding jobs at the end never perturbs earlier ones.
uint64_t FleetSeed(uint64_t fleet_seed, uint64_t job_index);

struct FleetJobResult {
  bool ok = false;
  std::string error;  // exception message when !ok; the pool itself is never poisoned
  // Identity of the job that produced this result, echoed from the FleetJob so a result is
  // self-describing (a degraded job can be named — and re-run — without re-deriving its
  // index into the input span).
  std::string app_package;
  int32_t device_id = 0;
  uint64_t seed = 0;
  DetectionStats stats;              // ScoreHangDoctor against the job's own ground truth
  hangdoctor::HangBugReport report;  // this device's local Hang Bug Report
  std::vector<std::string> discovered;  // blocking APIs this job newly learned
  TraceUsage usage;
  double overhead_pct = 0.0;
  int64_t stack_samples = 0;
  // Graceful-degradation accounting (src/hangdoctor/stream_guard.h): retries, degraded
  // checks, dropped records. All-zero on a fault-free run.
  hangdoctor::DegradationStats degradation;
  // False when the core hit a sticky stream-contract violation (e.g. an injected delay made
  // time regress); the job still completes and reports whatever it concluded before.
  bool stream_ok = true;
  std::string stream_error;
  // False when the session-log recorder lost bytes (torn-write injection / full disk). The
  // job itself still succeeds; only the recording is unusable.
  bool record_ok = true;
  std::string record_error;
  // Shared-knowledge-base savings for this job's session (zeros without --shared-kb).
  // Advisory, not part of the bit-identity contract: hit counts depend on which epoch the
  // session's snapshot came from, which depends on scheduling — the verdicts never do.
  hangdoctor::KbSessionStats kb;

  // One line naming the job and its health — app, device, seed, then whatever went wrong
  // (degradation counters, stream violation, torn recording). Used by table5's degradation
  // section; a clean job reads "... ok".
  std::string Describe() const;
};

struct FleetSummary {
  std::vector<FleetJobResult> jobs;  // index-aligned with the input span
  DetectionStats merged_stats;       // sum over ok jobs, folded in job-index order
  hangdoctor::HangBugReport merged_report;
  std::vector<std::string> discovered;  // union over ok jobs, deduplicated, sorted
  size_t failed = 0;                    // jobs that threw
  // Knowledge-base totals after the run's final publish (all-zero without shared_kb).
  hangdoctor::KnowledgeBase::Stats kb;

  // Folds the results of jobs [begin, end) — e.g. one app's slice of a fleet — into a
  // fresh report, in index order.
  hangdoctor::HangBugReport MergeReports(size_t begin, size_t end) const;
};

struct FleetOptions {
  // Worker threads; <= 0 resolves via ThreadPool::DefaultJobCount() (HANGDOCTOR_JOBS env,
  // else hardware_concurrency).
  int32_t jobs = 0;
  // Detection backend. Service mode (default) runs every job's detector inside one shared
  // DetectorService — the session-multiplexed shape — with `shards` shards (<= 0 resolves to
  // the worker count). Results are bit-identical to the per-job path at any value of either
  // knob; `service = false` keeps the old one-private-core-per-job path, retained as the
  // equivalence oracle for tests.
  bool service = true;
  int32_t shards = 0;
  // Service ingest threads. 0 (the default) drives each session synchronously into the
  // shared service from its pool worker. >= 1 switches service mode to the two-phase
  // deployment shape the paper's backend actually has: phase A simulates every job
  // device-side with a passive SPI stream tap (post-fault-injection, so faulty sessions
  // capture bit-identically), phase B streams the captured sessions through the service's
  // pipelined ingest — per-shard MPMC rings feeding `threads` dedicated shard workers — and
  // the service-harvested results replace the per-job ones. Bit-identical to both other
  // paths at any {threads, shards}. Negative throws std::invalid_argument. Ignored when
  // `service` is false.
  int32_t threads = 0;
  // Shared knowledge base (service mode only): every session reads epoch-published
  // snapshots of one hangdoctor::KnowledgeBase seeded from the jobs' common known_db and
  // publishes its confirmations back at epoch boundaries — the paper's reuse loop, fleet-
  // wide. Fleet output stays bit-identical to shared_kb = false (and to the per-job oracle)
  // at any {threads, shards, kb_epoch_sessions}; only FleetSummary::kb / per-job kb stats
  // change. Ignored when `service` is false.
  bool shared_kb = false;
  // Epoch length for shared_kb: publish every N closed sessions (0 = only at ingest
  // barriers and the end-of-run publish).
  int64_t kb_epoch_sessions = 16;
};

// Runs one job synchronously on the calling thread (also the per-worker body of RunFleet).
FleetJobResult RunFleetJob(const FleetJob& job);

// Runs every job across the pool and merges. A throwing job yields !ok for that index and
// is excluded from the merged aggregates; the remaining jobs are unaffected.
FleetSummary RunFleet(std::span<const FleetJob> jobs, const FleetOptions& options = {});

// Replays one recorded session log offline. The replayed report, execution log, and overhead
// accounting are bit-identical to the recording job's. Ground truth is not in the log, so
// `stats` stays zero apart from overhead_pct (detection-only replay); pass the same seeded
// `known_db` as the live run to reproduce the report's `discovered` markers.
FleetJobResult ReplayFleetJob(const std::string& path,
                              const hangdoctor::BlockingApiDatabase* known_db = nullptr);

// Replays many logs across the pool (same merge semantics as RunFleet).
FleetSummary ReplayFleet(std::span<const std::string> paths, const FleetOptions& options = {},
                         const hangdoctor::BlockingApiDatabase* known_db = nullptr);

// Resolves the worker count for a CLI consumer: `--jobs=N` argv flag wins, then the
// HANGDOCTOR_JOBS environment variable, then hardware_concurrency.
int32_t ResolveJobs(int argc, char** argv);

// `--shards=N` flag helper for service-mode consumers; 0 when absent (resolve to workers).
int32_t ResolveShards(int argc, char** argv);

// `--threads=N` flag helper for the service's pipelined-ingest axis: 0 when absent
// (synchronous service ingest); throws std::invalid_argument for an explicit N < 1.
int32_t ResolveThreads(int argc, char** argv);

// `--kb-epoch=N` flag helper for --shared-kb consumers: the FleetOptions default (16) when
// absent; throws std::invalid_argument for an explicit N < 0.
int64_t ResolveKbEpoch(int argc, char** argv);

// True when the bare `--flag` is present in argv (e.g. "--service").
bool HasFlag(int argc, char** argv, const char* flag);

// CLI flag helpers for record/replay: `--record=DIR` / `--replay=DIR`; empty when absent.
std::string ResolveRecordDir(int argc, char** argv);
std::string ResolveReplayDir(int argc, char** argv);

// `--faults=PROFILE` flag helper: resolves a named FaultProfile (see
// faultsim::FaultProfile::KnownProfiles). Returns the "none" profile when the flag is
// absent; throws std::invalid_argument on an unknown name.
faultsim::FaultProfile ResolveFaultProfile(int argc, char** argv);

}  // namespace workload

#endif  // SRC_WORKLOAD_FLEET_H_
