#include "src/workload/ground_truth.h"

#include <algorithm>

namespace workload {

GroundTruthRecorder::GroundTruthRecorder(droidsim::Phone* phone, droidsim::App* app)
    : phone_(phone), app_(app) {
  app_->AddObserver(this);
}

GroundTruthRecorder::~GroundTruthRecorder() { app_->RemoveObserver(this); }

const HangLabel* GroundTruthRecorder::Find(int64_t execution_id) const {
  auto it = by_execution_.find(execution_id);
  return it == by_execution_.end() ? nullptr : &labels_[it->second];
}

void GroundTruthRecorder::OnInputEventStart(droidsim::App& app,
                                            const droidsim::ActionExecution& execution,
                                            int32_t event_index) {
  (void)app;
  if (event_index == 0) {
    start_stats_[execution.execution_id] =
        phone_->kernel().ThreadStatsSnapshot(app_->main_tid());
    start_time_[execution.execution_id] = phone_->Now();
  }
}

void GroundTruthRecorder::OnActionQuiesced(droidsim::App& app,
                                           const droidsim::ActionExecution& execution) {
  (void)app;
  HangLabel label;
  label.execution_id = execution.execution_id;
  label.action_uid = execution.action_uid;
  label.response = execution.max_response;
  label.hang = execution.max_response > simkit::kPerceivableDelay;
  const droidsim::OpContribution* dominant = nullptr;
  for (const droidsim::OpContribution& contribution : execution.contributions) {
    if (dominant == nullptr || contribution.self_duration > dominant->self_duration) {
      dominant = &contribution;
    }
  }
  if (dominant != nullptr && dominant->api != nullptr) {
    label.cause_api = dominant->api->FullName();
    label.cause_file = dominant->file;
    label.cause_line = dominant->line;
    label.cause_is_bug = dominant->api->kind != droidsim::ApiKind::kUi;
  }
  auto stats_it = start_stats_.find(execution.execution_id);
  auto time_it = start_time_.find(execution.execution_id);
  if (stats_it != start_stats_.end() && time_it != start_time_.end()) {
    kernelsim::ThreadStats now_stats = phone_->kernel().ThreadStatsSnapshot(app_->main_tid());
    simkit::SimDuration window = phone_->Now() - time_it->second;
    label.utilization = baselines::ComputeUtilization(stats_it->second, now_stats, window);
    start_stats_.erase(stats_it);
    start_time_.erase(time_it);
  }
  by_execution_[label.execution_id] = labels_.size();
  labels_.push_back(std::move(label));
}

baselines::UtilizationThresholds GroundTruthRecorder::LowThresholds() const {
  baselines::UtilizationThresholds thresholds;
  bool first = true;
  for (const HangLabel& label : labels_) {
    if (!label.hang || !label.cause_is_bug) {
      continue;
    }
    if (first) {
      thresholds.cpu_fraction = label.utilization.cpu_fraction;
      thresholds.mem_bytes_per_sec = label.utilization.mem_bytes_per_sec;
      first = false;
    } else {
      thresholds.cpu_fraction = std::min(thresholds.cpu_fraction,
                                         label.utilization.cpu_fraction);
      thresholds.mem_bytes_per_sec =
          std::min(thresholds.mem_bytes_per_sec, label.utilization.mem_bytes_per_sec);
    }
  }
  if (first) {
    // No bug hangs observed: fall back to permissive defaults.
    thresholds.cpu_fraction = 0.1;
    thresholds.mem_bytes_per_sec = 1.0 * 1024 * 1024;
  } else {
    // The detector samples fixed 100 ms windows rather than whole executions. I/O-bound bug
    // hangs contain windows with almost no CPU or memory activity, so catching *every* bug
    // (the paper's UTL property) requires thresholds far below the per-execution minimum —
    // which is exactly why UTL drowns in false positives.
    thresholds.cpu_fraction *= 0.25;
    thresholds.mem_bytes_per_sec *= 0.25;
  }
  return thresholds;
}

baselines::UtilizationThresholds GroundTruthRecorder::HighThresholds() const {
  baselines::UtilizationThresholds thresholds;
  thresholds.cpu_fraction = 0.0;
  thresholds.mem_bytes_per_sec = 0.0;
  for (const HangLabel& label : labels_) {
    if (!label.hang || !label.cause_is_bug) {
      continue;
    }
    thresholds.cpu_fraction = std::max(thresholds.cpu_fraction,
                                       label.utilization.cpu_fraction);
    thresholds.mem_bytes_per_sec =
        std::max(thresholds.mem_bytes_per_sec, label.utilization.mem_bytes_per_sec);
  }
  if (thresholds.cpu_fraction == 0.0 && thresholds.mem_bytes_per_sec == 0.0) {
    thresholds.cpu_fraction = 0.9;
    thresholds.mem_bytes_per_sec = 64.0 * 1024 * 1024;
  } else {
    thresholds.cpu_fraction *= 0.9;
    thresholds.mem_bytes_per_sec *= 0.9;
  }
  return thresholds;
}

int64_t GroundTruthRecorder::bug_hangs() const {
  int64_t count = 0;
  for (const HangLabel& label : labels_) {
    if (label.hang && label.cause_is_bug) {
      ++count;
    }
  }
  return count;
}

}  // namespace workload
