// The full app corpus of the paper's evaluation:
//  - the 16 study apps of Table 5 with their 34 soft hang bugs (23 previously unknown);
//  - the 8 motivation apps of Tables 1/2 with 19 well-known bugs and 34 hang-prone UI ops;
//  - ~90 bug-free filler apps, for a total of 114 tested apps.
// Each BugSpec records the expected culprit and whether a PerfChecker-style offline scan
// should find it, so benches can verify both columns of Table 5 mechanically.
#ifndef SRC_WORKLOAD_CATALOG_H_
#define SRC_WORKLOAD_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "src/droidsim/app.h"
#include "src/hangdoctor/blocking_api_db.h"
#include "src/workload/api_catalog.h"

namespace workload {

struct BugSpec {
  std::string app_name;
  std::string issue_id;
  std::string api;  // expected culprit, "clazz.function"
  std::string file;
  int32_t line = 0;
  bool known_blocking = false;  // in the historical blocking-API database
  bool missed_offline = false;  // the MO column of Table 5
  bool self_developed = false;
};

// Internal state shared by the per-group builder translation units.
struct CatalogState {
  droidsim::ApiRegistry registry;
  StandardApis apis;
  std::vector<std::unique_ptr<droidsim::AppSpec>> owned_apps;
  std::vector<const droidsim::AppSpec*> study;
  std::vector<const droidsim::AppSpec*> motivation;
  std::vector<const droidsim::AppSpec*> filler;
  // The async study of DESIGN.md section 3.8 (apps whose hangs happen *off* the main thread
  // behind a future). Kept out of `study`/all_apps() so the Table 5 headline — 114 apps,
  // paper-pinned — and every golden stay unchanged; benches opt in via --async.
  std::vector<const droidsim::AppSpec*> async_study;
  std::vector<BugSpec> study_bugs;
  std::vector<BugSpec> motivation_bugs;
  std::vector<BugSpec> async_bugs;

  droidsim::AppSpec* NewApp(const std::string& name, const std::string& package,
                            const std::string& category, const std::string& commit,
                            int64_t downloads);
};

void BuildStudyApps(CatalogState* state);       // study_apps.cc (Table 5)
void BuildMotivationApps(CatalogState* state);  // motivation_apps.cc (Tables 1/2)
void BuildFillerApps(CatalogState* state);      // filler_apps.cc (to 114 apps)
void BuildAsyncApps(CatalogState* state);       // async_apps.cc (section 3.8)

class Catalog {
 public:
  Catalog();
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  const droidsim::ApiRegistry& apis() const { return state_.registry; }
  const StandardApis& std_apis() const { return state_.apis; }

  const std::vector<const droidsim::AppSpec*>& study_apps() const { return state_.study; }
  const std::vector<const droidsim::AppSpec*>& motivation_apps() const {
    return state_.motivation;
  }
  const std::vector<const droidsim::AppSpec*>& filler_apps() const { return state_.filler; }
  const std::vector<const droidsim::AppSpec*>& async_apps() const {
    return state_.async_study;
  }
  std::vector<const droidsim::AppSpec*> all_apps() const;

  const std::vector<BugSpec>& study_bugs() const { return state_.study_bugs; }
  const std::vector<BugSpec>& motivation_bugs() const { return state_.motivation_bugs; }
  const std::vector<BugSpec>& async_bugs() const { return state_.async_bugs; }
  std::vector<BugSpec> BugsOf(const std::string& app_name) const;

  const droidsim::AppSpec* FindApp(const std::string& name) const;

  // The known-blocking-API database as the community had it before Hang Doctor's discoveries.
  hangdoctor::BlockingApiDatabase MakeKnownDatabase() const;

 private:
  CatalogState state_;
};

}  // namespace workload

#endif  // SRC_WORKLOAD_CATALOG_H_
