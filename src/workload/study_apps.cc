// The 16 study apps of Table 5 and their 34 soft hang bugs. Each app's actions reproduce the
// published bug's mechanism at the call site named in the real issue tracker entry; manifest
// probabilities make bugs occasional, exactly the behaviour the Suspicious state exists for.
#include "src/workload/catalog.h"

namespace workload {

namespace {

using droidsim::ActionSpec;
using droidsim::ApiSpec;
using droidsim::InputEventSpec;
using droidsim::OpNode;

OpNode Op(const ApiSpec* api, const std::string& file, int32_t line) {
  return droidsim::MakeOp(api, file, line);
}

OpNode Bug(const ApiSpec* api, const std::string& file, int32_t line, double manifest) {
  OpNode node = droidsim::MakeOp(api, file, line);
  node.manifest_probability = manifest;
  return node;
}

InputEventSpec Ev(const std::string& handler, const std::string& file, int32_t line,
                  std::vector<OpNode> ops) {
  InputEventSpec event;
  event.handler = handler;
  event.handler_file = file;
  event.handler_line = line;
  event.ops = std::move(ops);
  return event;
}

ActionSpec Act(const std::string& name, double weight, std::vector<InputEventSpec> events) {
  ActionSpec action;
  action.name = name;
  action.weight = weight;
  action.events = std::move(events);
  return action;
}

void AddBug(CatalogState* state, const std::string& app, const std::string& issue,
            const ApiSpec* api, const std::string& file, int32_t line, bool known,
            bool missed_offline, bool self_developed = false) {
  BugSpec bug;
  bug.app_name = app;
  bug.issue_id = issue;
  bug.api = api->FullName();
  bug.file = file;
  bug.line = line;
  bug.known_blocking = known;
  bug.missed_offline = missed_offline;
  bug.self_developed = self_developed;
  state->study_bugs.push_back(std::move(bug));
}

}  // namespace

void BuildStudyApps(CatalogState* state) {
  const StandardApis& api = state->apis;

  // ----------------------------- AndStatus (issue 303) -----------------------------
  {
    droidsim::AppSpec* app =
        state->NewApp("AndStatus", "org.andstatus.app", "Social", "49ef41c", 1000);
    app->actions.push_back(Act(
        "ScrollTimeline", 3.0,
        {Ev("onScroll", "TimelineFragment.java", 183,
            {Op(api.ui_recycler_bind, "TimelineAdapter.java", 96),
             Bug(api.bitmap_decode_file, "MessageListAdapter.java", 214, 0.45),
             Bug(api.andstatus_transform, "ImageCache.java", 88, 0.40)})}));
    app->actions.push_back(Act(
        "OpenConversation", 2.0,
        {Ev("onItemClick", "ConversationActivity.java", 71,
            {Op(api.ui_set_text, "ConversationActivity.java", 88),
             Bug(api.andstatus_download, "TimelineLoader.java", 61, 0.5)})}));
    app->actions.push_back(Act(
        "OpenTimeline", 5.0,
        {Ev("onResume", "TimelineActivity.java", 52,
            {Op(api.ui_inflate, "TimelineActivity.java", 60),
             Op(api.ui_list_layout, "TimelineActivity.java", 77),
             Op(api.ui_set_text, "TimelineActivity.java", 81)})}));
    app->actions.push_back(Act(
        "ComposeView", 3.0, {Ev("onClick", "ComposeActivity.java", 40,
                                {Op(api.ui_measure, "ComposeActivity.java", 45)})}));
    state->study.push_back(app);
    AddBug(state, "AndStatus", "303", api.bitmap_decode_file, "MessageListAdapter.java", 214,
           /*known=*/true, /*missed_offline=*/false);
    AddBug(state, "AndStatus", "303", api.andstatus_transform, "ImageCache.java", 88, false,
           true);
    AddBug(state, "AndStatus", "303", api.andstatus_download, "TimelineLoader.java", 61, false,
           true);
  }

  // ----------------------------- DashClock (issue 874) -----------------------------
  {
    droidsim::AppSpec* app = state->NewApp("DashClock", "net.nurik.roman.dashclock",
                                           "Personalization", "7e248f7", 1000000);
    app->actions.push_back(Act(
        "RefreshWidgets", 2.0,
        {Ev("onUpdate", "ExtensionManager.java", 140,
            {Bug(api.db_query, "ExtensionManager.java", 152, 0.55),
             Op(api.ui_set_text, "WidgetRenderer.java", 63)})}));
    app->actions.push_back(Act(
        "OpenSettings", 2.0,
        {Ev("onCreate", "ConfigurationActivity.java", 38,
            {Op(api.ui_inflate, "ConfigurationActivity.java", 44),
             Op(api.ui_measure, "ConfigurationActivity.java", 52)})}));
    state->study.push_back(app);
    AddBug(state, "DashClock", "874", api.db_query, "ExtensionManager.java", 152, true, false);
  }

  // ----------------------------- CycleStreets (issue 117) -----------------------------
  {
    droidsim::AppSpec* app = state->NewApp("CycleStreets", "net.cyclestreets",
                                           "Travel & Local", "2d8d550", 50000);
    const ApiSpec* route_parse = MakeSelfDevelopedApi(
        &state->registry, "net.cyclestreets.RoutePlanner", "parseSegments",
        simkit::Milliseconds(30), 300 * 1024, 0.2);
    OpNode parse_loop = Op(route_parse, "RoutePlanner.java", 118);
    for (int i = 0; i < 16; ++i) {
      parse_loop.children.push_back(Op(api.small_file_read, "RoutePlanner.java", 131));
      parse_loop.children.push_back(Op(api.json_get, "RoutePlanner.java", 133));
    }
    app->actions.push_back(Act(
        "PanMap", 3.0, {Ev("onScroll", "MapFragment.java", 201,
                           {Op(api.ui_set_text, "MapFragment.java", 209),
                            Bug(api.tile_load, "TileSource.java", 97, 0.55)})}));
    app->actions.push_back(Act(
        "LoadTrack", 1.5, {Ev("onClick", "TrackImport.java", 36,
                              {Bug(api.gpx_read, "TrackImport.java", 44, 0.6),
                               Op(api.ui_set_text, "TrackImport.java", 58)})}));
    app->actions.push_back(Act("PlanRoute", 1.5,
                               {Ev("onClick", "RouteActivity.java", 64, {parse_loop})}));
    app->actions.push_back(Act(
        "ShowRoute", 1.5, {Ev("onItemClick", "RouteDatabase.java", 198,
                              {Bug(api.db_query, "RouteDatabase.java", 210, 0.5),
                               Op(api.ui_draw, "RouteMapView.java", 75)})}));
    app->actions.push_back(Act("OpenMenu", 6.0, {Ev("onClick", "MainMenu.java", 31,
                                                    {Op(api.ui_inflate, "MainMenu.java", 39),
                                                     Op(api.ui_list_layout, "MainMenu.java", 47)})}));
    state->study.push_back(app);
    AddBug(state, "CycleStreets", "117", api.tile_load, "TileSource.java", 97, false, true);
    AddBug(state, "CycleStreets", "117", api.gpx_read, "TrackImport.java", 44, false, true);
    AddBug(state, "CycleStreets", "117", route_parse, "RoutePlanner.java", 118, false, true,
           /*self_developed=*/true);
    AddBug(state, "CycleStreets", "117", api.db_query, "RouteDatabase.java", 210, true, false);
  }

  // ----------------------------- K9-mail (issue 1007) -----------------------------
  {
    droidsim::AppSpec* app =
        state->NewApp("K9-Mail", "com.fsck.k9", "Communication", "ac131a2", 5000000);
    app->actions.push_back(Act(
        "OpenEmail", 3.0,
        {Ev("onItemClick", "MessageList.java", 371,
            {Op(api.ui_set_text, "MessageHeader.java", 45),
             Bug(api.html_clean, "HtmlSanitizer.java", 25, 0.5),
             Bug(api.mime_decode, "MessageView.java", 129, 0.35)})}));
    app->actions.push_back(Act(
        "Folders", 4.0, {Ev("onClick", "FolderList.java", 58,
                            {Op(api.ui_inflate, "FolderList.java", 66),
                             Op(api.ui_list_layout, "FolderList.java", 81)})}));
    app->actions.push_back(Act(
        "Inbox", 5.0, {Ev("onClick", "MessageListFragment.java", 92,
                          {Op(api.ui_gallery_bind, "MessageListFragment.java", 101),
                           Op(api.ui_list_layout, "MessageListFragment.java", 117)})}));
    app->actions.push_back(Act("Compose", 2.0,
                               {Ev("onClick", "MessageCompose.java", 55,
                                   {Op(api.ui_inflate, "MessageCompose.java", 62)})}));
    state->study.push_back(app);
    AddBug(state, "K9-Mail", "1007", api.html_clean, "HtmlSanitizer.java", 25, false, true);
    AddBug(state, "K9-Mail", "1007", api.mime_decode, "MessageView.java", 129, false, true);
  }

  // ----------------------------- Omni-Notes (issue 253) -----------------------------
  {
    droidsim::AppSpec* app = state->NewApp("Omni-Notes", "it.feio.android.omninotes",
                                           "Productivity", "8ffde3a", 50000);
    app->actions.push_back(Act(
        "OpenNoteList", 3.0,
        {Ev("onResume", "MainActivity.java", 77,
            {Op(api.ui_list_layout, "NoteListFragment.java", 88),
             Bug(api.omni_thumbnails, "AttachmentLoader.java", 77, 0.5)})}));
    app->actions.push_back(Act(
        "MergeNotes", 1.5, {Ev("onClick", "NoteMerger.java", 32,
                               {Op(api.ui_notify_changed, "NoteListFragment.java", 132),
                                Bug(api.omni_merge, "NoteMerger.java", 41, 0.55)})}));
    app->actions.push_back(Act(
        "ImportBackup", 1.0, {Ev("onClick", "BackupImporter.java", 104,
                                 {Op(api.ui_inflate, "SettingsActivity.java", 61),
                                  Bug(api.omni_import, "BackupImporter.java", 120, 0.55)})}));
    app->actions.push_back(Act("OpenDrawer", 6.0,
                               {Ev("onClick", "DrawerFragment.java", 29,
                                   {Op(api.ui_inflate, "DrawerFragment.java", 36),
                                    Op(api.ui_animate, "DrawerFragment.java", 44)})}));
    state->study.push_back(app);
    AddBug(state, "Omni-Notes", "253", api.omni_thumbnails, "AttachmentLoader.java", 77, false,
           true);
    AddBug(state, "Omni-Notes", "253", api.omni_merge, "NoteMerger.java", 41, false, true);
    AddBug(state, "Omni-Notes", "253", api.omni_import, "BackupImporter.java", 120, false,
           true);
  }

  // ----------------------------- OwnTracks (issue 303) -----------------------------
  {
    droidsim::AppSpec* app = state->NewApp("OwnTracks", "org.owntracks.android",
                                           "Travel & Local", "1514d4a", 1000);
    const ApiSpec* dao_save = MakeSelfDevelopedApi(&state->registry,
                                                   "org.owntracks.android.db.LocationDao",
                                                   "save", simkit::Milliseconds(8), 64 * 1024,
                                                   0.3);
    OpNode save = Op(dao_save, "LocationDao.java", 58);
    save.children.push_back(Bug(api.db_insert, "LocationDao.java", 64, 0.55));
    app->actions.push_back(
        Act("SaveLocation", 2.0, {Ev("onLocationChanged", "MapActivity.java", 144, {save})}));
    app->actions.push_back(Act("OpenMap", 2.0, {Ev("onResume", "MapActivity.java", 61,
                                                   {Op(api.ui_draw, "MapActivity.java", 70),
                                                    Op(api.ui_measure, "MapActivity.java", 74)})}));
    state->study.push_back(app);
    AddBug(state, "OwnTracks", "303", api.db_insert, "LocationDao.java", 64, true, false);
  }

  // ----------------------------- QKSMS (issue 382) -----------------------------
  {
    droidsim::AppSpec* app =
        state->NewApp("QKSMS", "com.moez.QKSMS", "Communication", "2a80947", 100000);
    app->actions.push_back(Act(
        "BackupMessages", 1.0, {Ev("onClick", "BackupActivity.java", 51,
                                   {Bug(api.qksms_to_xml, "SmsBackup.java", 77, 0.6)})}));
    app->actions.push_back(Act(
        "OpenMms", 2.0, {Ev("onItemClick", "MessageListActivity.java", 102,
                            {Bug(api.qksms_load_parts, "MmsLoader.java", 64, 0.5),
                             Op(api.ui_set_text, "MessageView.java", 41)})}));
    app->actions.push_back(Act(
        "RebuildIndex", 1.0, {Ev("onClick", "SettingsFragment.java", 96,
                                 {Bug(api.qksms_reindex, "ConversationIndexer.java", 53,
                                      0.55)})}));
    app->actions.push_back(Act(
        "OpenConversationList", 6.0,
        {Ev("onResume", "ConversationListActivity.java", 47,
            {Op(api.ui_list_layout, "ConversationListActivity.java", 55),
             Op(api.ui_recycler_bind, "ConversationListActivity.java", 61)})}));
    state->study.push_back(app);
    AddBug(state, "QKSMS", "382", api.qksms_to_xml, "SmsBackup.java", 77, false, true);
    AddBug(state, "QKSMS", "382", api.qksms_load_parts, "MmsLoader.java", 64, false, true);
    AddBug(state, "QKSMS", "382", api.qksms_reindex, "ConversationIndexer.java", 53, false,
           true);
  }

  // ----------------------------- StickerCamera (issue 29) -----------------------------
  {
    droidsim::AppSpec* app = state->NewApp("StickerCamera", "com.github.skykai.stickercamera",
                                           "Photography", "6fc41b1", 5000);
    app->actions.push_back(Act(
        "ResumeCamera", 2.0,
        {Ev("onResume", "CameraActivity.java", 88,
            {Bug(api.camera_set_parameters, "CameraActivity.java", 96, 0.45),
             Bug(api.camera_open, "CameraActivity.java", 102, 0.55),
             Op(api.ui_set_text, "CameraActivity.java", 110),
             Op(api.ui_inflate, "CameraActivity.java", 118)})}));
    app->actions.push_back(Act(
        "EditSticker", 2.0, {Ev("onItemClick", "StickerActivity.java", 61,
                                {Bug(api.bitmap_decode_file, "StickerActivity.java", 74, 0.5),
                                 Op(api.ui_draw, "StickerCanvas.java", 39)})}));
    app->actions.push_back(Act(
        "OpenGallery", 2.0, {Ev("onClick", "GalleryActivity.java", 42,
                                {Op(api.ui_inflate, "GalleryActivity.java", 50),
                                 Op(api.ui_gallery_bind, "GalleryActivity.java", 58)})}));
    state->study.push_back(app);
    AddBug(state, "StickerCamera", "29", api.camera_set_parameters, "CameraActivity.java", 96,
           true, false);
    AddBug(state, "StickerCamera", "29", api.camera_open, "CameraActivity.java", 102, true,
           false);
    AddBug(state, "StickerCamera", "29", api.bitmap_decode_file, "StickerActivity.java", 74,
           true, false);
  }

  // ----------------------------- AntennaPod (issue 1921) -----------------------------
  {
    droidsim::AppSpec* app = state->NewApp("AntennaPod", "de.danoeh.antennapod",
                                           "Media & Video", "c3808e2", 100000);
    app->actions.push_back(Act(
        "RefreshFeed", 2.0, {Ev("onRefresh", "FeedFragment.java", 133,
                                {Bug(api.feed_parse, "FeedParser.java", 210, 0.5)})}));
    app->actions.push_back(Act(
        "OpenEpisode", 2.0, {Ev("onItemClick", "EpisodeActivity.java", 77,
                                {Bug(api.chapter_read, "ChapterReader.java", 88, 0.5),
                                 Op(api.ui_set_text, "EpisodeActivity.java", 85)})}));
    app->actions.push_back(Act(
        "PlayEpisode", 2.0, {Ev("onClick", "PlaybackController.java", 64,
                                {Bug(api.media_prepare, "PlaybackService.java", 301, 0.55)})}));
    app->actions.push_back(Act(
        "BrowsePodcasts", 6.0,
        {Ev("onResume", "PodcastListFragment.java", 42,
            {Op(api.ui_list_layout, "PodcastListFragment.java", 51),
             Op(api.ui_recycler_bind, "PodcastListFragment.java", 59)})}));
    state->study.push_back(app);
    AddBug(state, "AntennaPod", "1921", api.feed_parse, "FeedParser.java", 210, false, true);
    AddBug(state, "AntennaPod", "1921", api.chapter_read, "ChapterReader.java", 88, false,
           true);
    AddBug(state, "AntennaPod", "1921", api.media_prepare, "PlaybackService.java", 301, true,
           false);
  }

  // ----------------------------- Merchant (issue 17) -----------------------------
  {
    droidsim::AppSpec* app =
        state->NewApp("Merchant", "com.merchant.app", "Business", "c87d69a", 10000);
    app->actions.push_back(Act(
        "OpenOrders", 2.0, {Ev("onClick", "OrderListActivity.java", 83,
                               {Bug(api.ormlite_query, "OrderRepository.java", 95, 0.55),
                                Op(api.ui_set_text, "OrderListActivity.java", 91)})}));
    app->actions.push_back(Act(
        "Dashboard", 2.0, {Ev("onResume", "DashboardActivity.java", 39,
                              {Op(api.ui_inflate, "DashboardActivity.java", 47),
                               Op(api.ui_measure, "DashboardActivity.java", 55)})}));
    state->study.push_back(app);
    AddBug(state, "Merchant", "17", api.ormlite_query, "OrderRepository.java", 95, false, true);
  }

  // ----------------------------- UOITDC Booking (issue 3) -----------------------------
  {
    droidsim::AppSpec* app =
        state->NewApp("UOITDC Booking", "ca.uoit.dcbooking", "Tools", "5d18c26", 100);
    app->actions.push_back(Act(
        "LoadBookings", 2.0, {Ev("onResume", "BookingActivity.java", 52,
                                 {Bug(api.gson_fromjson, "BookingCache.java", 58, 0.5),
                                  Op(api.ui_set_text, "BookingActivity.java", 66)})}));
    app->actions.push_back(Act(
        "ImportSchedule", 1.5, {Ev("onClick", "ScheduleActivity.java", 40,
                                   {Bug(api.ics_parse, "IcsParser.java", 33, 0.5)})}));
    app->actions.push_back(Act(
        "OpenCalendar", 6.0, {Ev("onClick", "CalendarActivity.java", 35,
                                 {Op(api.ui_inflate, "CalendarActivity.java", 44),
                                  Op(api.ui_draw, "CalendarActivity.java", 58)})}));
    state->study.push_back(app);
    AddBug(state, "UOITDC Booking", "3", api.gson_fromjson, "BookingCache.java", 58, false,
           true);
    AddBug(state, "UOITDC Booking", "3", api.ics_parse, "IcsParser.java", 33, false, true);
  }

  // ----------------------------- SageMath (issue 84) -----------------------------
  {
    droidsim::AppSpec* app =
        state->NewApp("SageMath", "org.sagemath.droid", "Education", "3198106", 10000);
    OpNode cupboard = Bug(api.cupboard_get, "CupboardHelper.java", 29, 0.55);
    // The library wrapper hides a known-blocking database insert; the library ships source,
    // so an offline scan that examines library code can still find the nested call.
    cupboard.children.push_back(Op(api.db_insert, "EntityConverter.java", 205));
    app->actions.push_back(Act(
        "SaveWorksheet", 1.5, {Ev("onClick", "WorksheetActivity.java", 130,
                                  {Bug(api.gson_tojson, "CellData.java", 141, 0.5)})}));
    app->actions.push_back(Act(
        "SyncSession", 1.5, {Ev("onClick", "SessionService.java", 68,
                                {Bug(api.gson_tojson, "SessionState.java", 77, 0.45)})}));
    app->actions.push_back(
        Act("StoreResult", 1.5, {Ev("onClick", "ResultActivity.java", 55, {cupboard})}));
    app->actions.push_back(Act(
        "OpenWorksheet", 2.0, {Ev("onItemClick", "WorksheetList.java", 49,
                                  {Op(api.ui_webview_layout, "WorksheetView.java", 91)})}));
    state->study.push_back(app);
    AddBug(state, "SageMath", "84", api.gson_tojson, "CellData.java", 141, false, true);
    AddBug(state, "SageMath", "84", api.gson_tojson, "SessionState.java", 77, false, true);
    AddBug(state, "SageMath", "84", api.db_insert, "EntityConverter.java", 205, true, false);
  }

  // ----------------------------- RadioDroid (issue 29) -----------------------------
  {
    droidsim::AppSpec* app = state->NewApp("RadioDroid", "net.programmierecke.radiodroid2",
                                           "Music & Audio", "0108e8b", 10);
    app->actions.push_back(Act(
        "PlayStation", 2.0, {Ev("onClick", "PlayerActivity.java", 59,
                                {Bug(api.media_prepare, "PlayerService.java", 187, 0.55)})}));
    app->actions.push_back(Act(
        "BrowseStations", 3.0,
        {Ev("onResume", "StationListFragment.java", 66,
            {Op(api.ui_list_layout, "StationListFragment.java", 74),
             Bug(api.radio_icon_decode, "StationIconCache.java", 49, 0.5)})}));
    state->study.push_back(app);
    AddBug(state, "RadioDroid", "29", api.media_prepare, "PlayerService.java", 187, true,
           false);
    AddBug(state, "RadioDroid", "29", api.radio_icon_decode, "StationIconCache.java", 49,
           false, true);
  }

  // ----------------------------- Git@OSC (issue 89) -----------------------------
  {
    droidsim::AppSpec* app =
        state->NewApp("GIT@OSC", "net.oschina.gitapp", "Tools", "bb80e0a95", 10000);
    app->actions.push_back(Act(
        "OpenCommit", 2.0, {Ev("onItemClick", "CommitDetailActivity.java", 174,
                               {Bug(api.git_diff_load, "CommitDetail.java", 187, 0.55),
                                Op(api.ui_set_text, "CommitDetail.java", 195)})}));
    app->actions.push_back(Act(
        "OpenRepo", 2.0, {Ev("onClick", "RepoActivity.java", 48,
                             {Op(api.ui_inflate, "RepoActivity.java", 57)})}));
    state->study.push_back(app);
    AddBug(state, "GIT@OSC", "89", api.git_diff_load, "CommitDetail.java", 187, false, true);
  }

  // ----------------------------- Lens-Launcher (issue 15) -----------------------------
  {
    droidsim::AppSpec* app = state->NewApp("Lens-Launcher", "nickrout.lenslauncher",
                                           "Personalization", "e41e6c6", 100000);
    OpNode glide = Op(api.launcher_glide_load, "IconLoader.java", 45);
    glide.children.push_back(Bug(api.bitmap_decode_file, "IconLoader.java", 52, 0.5));
    app->actions.push_back(Act(
        "RenderAppIcons", 2.0,
        {Ev("onResume", "HomeActivity.java", 70,
            {std::move(glide), Op(api.ui_draw, "LensView.java", 133)})}));
    app->actions.push_back(Act(
        "OpenSettings", 1.5, {Ev("onClick", "SettingsActivity.java", 33,
                                 {Op(api.ui_inflate, "SettingsActivity.java", 41)})}));
    state->study.push_back(app);
    AddBug(state, "Lens-Launcher", "15", api.bitmap_decode_file, "IconLoader.java", 52, true,
           false);
  }

  // ----------------------------- SkyTube (issue 88) -----------------------------
  {
    droidsim::AppSpec* app =
        state->NewApp("SkyTube", "free.rm.skytube", "Video Players", "3da671c", 5000);
    app->actions.push_back(Act(
        "OpenVideo", 2.0, {Ev("onItemClick", "VideoActivity.java", 94,
                              {Bug(api.video_info_parse, "VideoInfoParser.java", 61, 0.5),
                               Op(api.ui_set_text, "VideoActivity.java", 102)})}));
    app->actions.push_back(Act(
        "BrowseVideos", 3.0,
        {Ev("onResume", "VideoGridFragment.java", 58,
            {Op(api.ui_recycler_bind, "VideoGridFragment.java", 66),
             Op(api.ui_list_layout, "VideoGridFragment.java", 71)})}));
    state->study.push_back(app);
    AddBug(state, "SkyTube", "88", api.video_info_parse, "VideoInfoParser.java", 61, false,
           true);
  }
}

}  // namespace workload
