#include "src/workload/distributed_fleet.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/netd/record_codec.h"

namespace workload {

namespace {

struct PlannedEvent {
  enum class Kind : uint8_t { kMigrate, kCrash, kHeartbeatLoss };
  Kind kind = Kind::kMigrate;
  int32_t worker = -1;  // victim (crash / loss); ignored for migrate
  int64_t at_frame = 0;
};

// Splits one recorded v2 log into its wire frames (open + records + close), dropping the
// container's kEnd — the coordinator owns stream termination.
std::vector<std::string> SessionFrames(const hangdoctor::SessionLogSlice& slice) {
  std::string container;
  std::string error;
  std::vector<hangdoctor::SessionLogSlice> one{slice};
  if (!hangdoctor::MuxSessionLogs(one, {}, &container, &error)) {
    throw std::runtime_error("distributed fleet: mux session " +
                             std::to_string(slice.id.value) + ": " + error);
  }
  std::vector<std::string> frames;
  if (!netd::ContainerToWireFrames(container, &frames, &error)) {
    throw std::runtime_error("distributed fleet: split session " +
                             std::to_string(slice.id.value) + ": " + error);
  }
  while (!frames.empty() &&
         (static_cast<hangdoctor::MuxFrameTag>(static_cast<uint8_t>(frames.back()[0])) ==
              hangdoctor::MuxFrameTag::kEnd ||
          static_cast<hangdoctor::MuxFrameTag>(static_cast<uint8_t>(frames.back()[0])) ==
              hangdoctor::MuxFrameTag::kEpochPublish)) {
    frames.pop_back();
  }
  return frames;
}

int64_t FrameIndexFor(double fraction, int64_t total_frames) {
  auto at = static_cast<int64_t>(fraction * static_cast<double>(total_frames));
  return std::clamp<int64_t>(at, 1, total_frames > 1 ? total_frames - 1 : 1);
}

int32_t NextLiveWorker(fleetd::Coordinator* coordinator, int32_t workers, int32_t after) {
  for (int32_t step = 1; step < workers; ++step) {
    int32_t w = (after + step) % workers;
    if (!coordinator->fenced(w)) {
      return w;
    }
  }
  return -1;
}

}  // namespace

DistributedFleetResult RunDistributedFleetFromLogs(
    std::span<const hangdoctor::SessionLogSlice> slices,
    const DistributedFleetOptions& options) {
  if (options.workers < 1) {
    throw std::invalid_argument("distributed fleet: workers must be >= 1");
  }
  if (slices.empty()) {
    throw std::invalid_argument("distributed fleet: no sessions");
  }

  // Per-session frame queues, plus the run's total frame count for event placement.
  std::vector<std::vector<std::string>> frames;
  frames.reserve(slices.size());
  int64_t total_frames = 0;
  uint64_t min_id = slices.front().id.value;
  uint64_t max_id = slices.front().id.value;
  for (const auto& slice : slices) {
    frames.push_back(SessionFrames(slice));
    total_frames += static_cast<int64_t>(frames.back().size());
    min_id = std::min(min_id, slice.id.value);
    max_id = std::max(max_id, slice.id.value);
  }

  DistributedFleetResult result;

  // The run's event schedule, sorted by frame index.
  std::vector<PlannedEvent> plan;
  if (options.migrate_at >= 0.0 && options.workers >= 2) {
    plan.push_back(PlannedEvent{PlannedEvent::Kind::kMigrate, -1,
                                FrameIndexFor(options.migrate_at, total_frames)});
  }
  for (const faultsim::FleetFaultEvent& fault :
       faultsim::PlanFleetFaults(options.fleet_faults, options.fault_seed, options.workers)) {
    PlannedEvent event;
    event.kind = fault.kind == faultsim::FleetFaultEvent::Kind::kWorkerCrash
                     ? PlannedEvent::Kind::kCrash
                     : PlannedEvent::Kind::kHeartbeatLoss;
    event.worker = fault.worker;
    event.at_frame = FrameIndexFor(fault.at, total_frames);
    plan.push_back(event);
    result.events.push_back(faultsim::DescribeFleetFault(fault));
  }
  std::stable_sort(plan.begin(), plan.end(),
                   [](const PlannedEvent& a, const PlannedEvent& b) {
                     return a.at_frame < b.at_frame;
                   });

  // Boot the shard group: one embedded daemon per worker, linked over a socketpair.
  std::vector<std::unique_ptr<netd::NetServer>> servers;
  std::vector<fleetd::WorkerEndpoint> endpoints;
  for (int32_t w = 0; w < options.workers; ++w) {
    netd::ServerOptions server_options;
    server_options.workers = options.server_workers;
    server_options.rings = options.rings;
    server_options.service.shards = 4;
    server_options.service.seed_db = options.known_db;
    server_options.listen = false;
    server_options.allow_worker_role = true;
    servers.push_back(std::make_unique<netd::NetServer>(server_options));
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
      throw std::runtime_error("distributed fleet: socketpair failed");
    }
    servers.back()->AdoptConnection(sv[0]);
    endpoints.push_back(fleetd::WorkerEndpoint{.port = 0, .fd = sv[1]});
  }

  fleetd::CoordinatorOptions coordinator_options;
  coordinator_options.workers = endpoints;
  coordinator_options.lease_timeout_ms = options.lease_timeout_ms;
  fleetd::Coordinator coordinator(coordinator_options);
  coordinator.AssignRange(min_id, max_id);

  // Route round-robin across sessions (the mux default interleaving), firing planned events
  // at their frame indices and liveness pulses on the real clock (see the options comment:
  // leases race heartbeat-ack round trips, so pulse time must be wall time).
  std::vector<size_t> next(frames.size(), 0);
  size_t planned = 0;
  int64_t routed = 0;
  const auto run_start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&run_start]() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - run_start)
        .count();
  };
  int64_t last_pulse_ms = 0;
  bool outage = false;
  std::vector<int32_t> lost_workers;
  while (!outage) {
    bool any = false;
    for (size_t s = 0; s < frames.size() && !outage; ++s) {
      if (next[s] >= frames[s].size()) {
        continue;
      }
      any = true;
      while (planned < plan.size() && plan[planned].at_frame <= routed) {
        const PlannedEvent& event = plan[planned++];
        switch (event.kind) {
          case PlannedEvent::Kind::kMigrate: {
            int32_t from = coordinator.OwnerOf(min_id);
            int32_t to = from < 0 ? -1 : NextLiveWorker(&coordinator, options.workers, from);
            std::string error;
            if (from >= 0 && to >= 0 && coordinator.MigrateWorker(from, to, &error)) {
              result.events.push_back("drain-migrated worker " + std::to_string(from) +
                                      " -> " + std::to_string(to) + " at frame " +
                                      std::to_string(routed));
            } else {
              result.events.push_back("migration skipped: " + error);
            }
            break;
          }
          case PlannedEvent::Kind::kCrash:
            coordinator.CrashWorker(event.worker);
            break;
          case PlannedEvent::Kind::kHeartbeatLoss:
            coordinator.SetHeartbeatLoss(event.worker, true);
            lost_workers.push_back(event.worker);
            break;
        }
      }
      if (options.pulse_every_frames > 0 && routed % options.pulse_every_frames == 0) {
        int64_t now_ms = elapsed_ms();
        if (routed == 0 || now_ms - last_pulse_ms >= options.pulse_step_ms) {
          last_pulse_ms = now_ms;
          coordinator.Pulse(now_ms);
        }
      }
      uint64_t id = slices[s].id.value;
      std::string error;
      if (!coordinator.RouteFrame(id, frames[s][next[s]], &error)) {
        result.events.push_back("routing stopped: " + error);
        outage = true;
        break;
      }
      ++next[s];
      ++routed;
    }
    if (!any) {
      break;
    }
  }
  result.frames_routed = routed;

  // A heartbeat-silent worker is fenced by lease expiry, which needs the clock to keep
  // beating (in real time) after routing ends — up to a full lease past the last pulse.
  if (!outage) {
    int64_t deadline_ms = elapsed_ms() + options.lease_timeout_ms + 4 * options.pulse_step_ms;
    while (!lost_workers.empty() && elapsed_ms() < deadline_ms) {
      bool all_fenced = true;
      for (int32_t w : lost_workers) {
        all_fenced = all_fenced && coordinator.fenced(w);
      }
      if (all_fenced) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(options.pulse_step_ms));
      coordinator.Pulse(elapsed_ms());
    }
    coordinator.WaitForResults(options.result_timeout_ms);
  }

  fleetd::FleetReport report = coordinator.Finish();
  result.outcomes = std::move(report.outcomes);
  result.merged = std::move(report.merged);
  result.stats = report.stats;
  for (auto& server : servers) {
    server->Stop();
  }
  return result;
}

DistributedFleetResult RunDistributedFleet(std::span<const FleetJob> jobs,
                                           const std::string& record_dir,
                                           const DistributedFleetOptions& options,
                                           FleetSummary* oracle) {
  std::filesystem::create_directories(record_dir);
  std::vector<FleetJob> recorded(jobs.begin(), jobs.end());
  for (size_t i = 0; i < recorded.size(); ++i) {
    recorded[i].record_path = record_dir + "/job_" + std::to_string(i) + ".hdsl";
  }
  FleetSummary summary = RunFleet(recorded, {.jobs = 2, .service = false});
  std::vector<std::string> logs;
  logs.reserve(recorded.size());
  for (const FleetJob& job : recorded) {
    std::ifstream in(job.record_path, std::ios::binary);
    logs.emplace_back(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    if (logs.back().empty()) {
      throw std::runtime_error("distributed fleet: empty recording " + job.record_path);
    }
  }
  std::vector<hangdoctor::SessionLogSlice> slices;
  for (size_t i = 0; i < logs.size(); ++i) {
    slices.push_back({telemetry::SessionId{i + 1}, logs[i]});
  }
  if (oracle != nullptr) {
    *oracle = std::move(summary);
  }
  DistributedFleetOptions wired = options;
  if (wired.known_db == nullptr && !recorded.empty()) {
    wired.known_db = recorded.front().known_db;
  }
  DistributedFleetResult result = RunDistributedFleetFromLogs(slices, wired);
  for (const FleetJob& job : recorded) {
    std::remove(job.record_path.c_str());
  }
  return result;
}

}  // namespace workload
