#include "src/workload/api_catalog.h"

namespace workload {

namespace {

using droidsim::ApiCostModel;
using droidsim::ApiKind;
using droidsim::ApiSpec;
using droidsim::DeviceKind;
using simkit::Milliseconds;

ApiSpec UiApi(const std::string& clazz, const std::string& name, int64_t cpu_ms,
              int64_t alloc_kb, int32_t frames) {
  ApiSpec api;
  api.name = name;
  api.clazz = clazz;
  api.kind = ApiKind::kUi;
  api.known_blocking = false;
  api.cost.cpu_mean = Milliseconds(cpu_ms);
  api.cost.cpu_sigma = 0.25;
  api.cost.uarch = droidsim::UiUarch();
  api.cost.alloc_bytes_mean = alloc_kb * 1024;
  api.cost.touch_bytes = 256 * 1024;
  // UI code on the main thread mostly hands work to the render thread; it yields rarely
  // itself (the binder traffic is charged to the render side of the pipeline).
  api.cost.syscalls_per_ms = 0.25;
  api.cost.frames = frames;
  api.cost.frame_cpu_mean = Milliseconds(8);
  return api;
}

ApiSpec ComputeApi(const std::string& clazz, const std::string& name, int64_t cpu_ms,
                   double sigma, int64_t alloc_kb, double syscalls_per_ms, bool known,
                   const kernelsim::MicroArchProfile& uarch) {
  ApiSpec api;
  api.name = name;
  api.clazz = clazz;
  api.kind = ApiKind::kCompute;
  api.known_blocking = known;
  api.cost.cpu_mean = Milliseconds(cpu_ms);
  api.cost.cpu_sigma = sigma;
  api.cost.uarch = uarch;
  api.cost.alloc_bytes_mean = alloc_kb * 1024;
  api.cost.touch_bytes = 512 * 1024;
  api.cost.syscalls_per_ms = syscalls_per_ms;
  return api;
}

ApiSpec IoApi(const std::string& clazz, const std::string& name, ApiKind kind,
              DeviceKind device, int32_t rounds, int64_t io_kb, double cache_hit,
              int64_t cpu_ms, int64_t alloc_kb, double syscalls_per_ms, bool known) {
  ApiSpec api;
  api.name = name;
  api.clazz = clazz;
  api.kind = kind;
  api.known_blocking = known;
  api.cost.device = device;
  api.cost.io_rounds = rounds;
  api.cost.io_bytes_mean = io_kb * 1024;
  api.cost.io_cache_hit = cache_hit;
  api.cost.cpu_mean = Milliseconds(cpu_ms);
  api.cost.cpu_sigma = 0.30;
  api.cost.uarch = droidsim::DefaultUarch();
  api.cost.alloc_bytes_mean = alloc_kb * 1024;
  api.cost.touch_bytes = 256 * 1024;
  api.cost.syscalls_per_ms = syscalls_per_ms;
  return api;
}

}  // namespace

const droidsim::ApiSpec* MakeSelfDevelopedApi(droidsim::ApiRegistry* registry,
                                              const std::string& clazz,
                                              const std::string& method,
                                              simkit::SimDuration cpu_mean, int64_t alloc_bytes,
                                              double syscalls_per_ms) {
  ApiSpec api;
  api.name = method;
  api.clazz = clazz;
  api.kind = ApiKind::kCompute;
  api.known_blocking = false;
  api.self_developed = true;
  api.cost.cpu_mean = cpu_mean;
  api.cost.cpu_sigma = 0.30;
  api.cost.uarch = droidsim::DefaultUarch();
  api.cost.alloc_bytes_mean = alloc_bytes;
  api.cost.syscalls_per_ms = syscalls_per_ms;
  return registry->Register(std::move(api));
}

StandardApis BuildStandardApis(droidsim::ApiRegistry* registry) {
  StandardApis apis;

  // ------------------------------ UI APIs ------------------------------
  apis.ui_set_text = registry->Register(UiApi("android.widget.TextView", "setText", 6, 24, 0));
  apis.ui_inflate =
      registry->Register(UiApi("android.view.LayoutInflater", "inflate", 90, 320, 14));
  apis.ui_seekbar_init = registry->Register(UiApi("android.widget.SeekBar", "<init>", 12, 48, 2));
  apis.ui_orientation_enable = registry->Register(
      UiApi("android.view.OrientationEventListener", "enable", 8, 16, 0));
  apis.ui_list_layout =
      registry->Register(UiApi("android.widget.ListView", "layoutChildren", 65, 200, 12));
  {
    // Pure layout math: heavy on the main thread, almost nothing for the render thread. One
    // of the UI operations whose symptoms overlap with bugs (the 36% the filter cannot prune).
    ApiSpec api = UiApi("android.view.View", "measure", 45, 64, 1);
    api.cost.syscalls_per_ms = 0.05;
    apis.ui_measure = registry->Register(std::move(api));
  }
  apis.ui_draw = registry->Register(UiApi("android.view.View", "draw", 30, 96, 10));
  apis.ui_webview_layout =
      registry->Register(UiApi("android.webkit.WebView", "layout", 150, 512, 22));
  apis.ui_recycler_bind = registry->Register(
      UiApi("androidx.recyclerview.widget.RecyclerView", "bindViews", 55, 160, 10));
  apis.ui_animate =
      registry->Register(UiApi("android.animation.ObjectAnimator", "start", 18, 32, 4));
  apis.ui_notify_changed = registry->Register(
      UiApi("android.widget.BaseAdapter", "notifyDataSetChanged", 45, 128, 9));
  apis.ui_request_layout =
      registry->Register(UiApi("android.view.View", "requestLayout", 25, 48, 8));
  {
    // Image-grid binding: legitimate UI work with large bitmap buffers. The page-fault-heavy
    // false positive that exercises Diagnoser's path B (the "Inbox" action of Figure 7).
    ApiSpec api = UiApi("android.widget.Gallery", "bindImages", 70, 3600, 8);
    api.cost.syscalls_per_ms = 0.05;
    apis.ui_gallery_bind = registry->Register(std::move(api));
  }

  // ------------------------- Known blocking APIs -------------------------
  apis.camera_open = registry->Register(IoApi("android.hardware.Camera", "open",
                                              ApiKind::kCamera, DeviceKind::kCamera,
                                              /*rounds=*/8, /*io_kb=*/0, /*cache_hit=*/0.0,
                                              /*cpu_ms=*/120, /*alloc_kb=*/2600,
                                              /*syscalls_per_ms=*/0.2, /*known=*/true));
  apis.camera_set_parameters =
      registry->Register(IoApi("android.hardware.Camera", "setParameters", ApiKind::kCamera,
                               DeviceKind::kCamera, 4, 0, 0.0, 80, 800, 0.2, true));
  {
    // Large-photo decode: flash read then a load/store-heavy decode with big allocations.
    ApiSpec api = IoApi("android.graphics.BitmapFactory", "decodeFile", ApiKind::kFileIo,
                        DeviceKind::kFlash, 4, 1200, 0.35, 280, 4200, 0.03, true);
    api.cost.uarch = droidsim::DecoderUarch();
    api.cost.cpu_sigma = 0.30;
    apis.bitmap_decode_file = registry->Register(std::move(api));
  }
  {
    ApiSpec api = IoApi("android.database.sqlite.SQLiteDatabase", "query", ApiKind::kDatabase,
                        DeviceKind::kDatabase, 14, 96, 0.1, 220, 2600, 0.3, true);
    api.cost.uarch = droidsim::DatabaseUarch();
    apis.db_query = registry->Register(std::move(api));
  }
  {
    ApiSpec api = IoApi("android.database.sqlite.SQLiteDatabase", "insertWithOnConflict",
                        ApiKind::kDatabase, DeviceKind::kDatabase, 12, 48, 0.0, 200, 2400, 0.3,
                        true);
    api.cost.uarch = droidsim::DatabaseUarch();
    apis.db_insert = registry->Register(std::move(api));
  }
  apis.prefs_commit = registry->Register(
      IoApi("android.content.SharedPreferences$Editor", "commit", ApiKind::kFileIo,
            DeviceKind::kFlash, 6, 32, 0.0, 33, 600, 0.3, true));
  apis.media_prepare = registry->Register(IoApi("android.media.MediaPlayer", "prepare",
                                                ApiKind::kMedia, DeviceKind::kFlash, 20, 800,
                                                0.2, 220, 2800, 0.4, true));
  apis.bt_accept = registry->Register(IoApi("android.bluetooth.BluetoothServerSocket", "accept",
                                            ApiKind::kBluetooth, DeviceKind::kBluetooth, 4, 4,
                                            0.0, 60, 100, 0.2, true));
  apis.file_read = registry->Register(IoApi("java.io.FileInputStream", "read",
                                            ApiKind::kFileIo, DeviceKind::kFlash, 3, 600, 0.4,
                                            44, 500, 0.3, true));
  apis.obj_write = registry->Register(IoApi("java.io.ObjectOutputStream", "writeObject",
                                            ApiKind::kFileIo, DeviceKind::kFlash, 8, 300, 0.0,
                                            80, 2600, 0.4, true));

  // ---------------------------- Light helpers ----------------------------
  apis.string_format = registry->Register(ComputeApi("java.lang.String", "format", 3, 0.3, 8,
                                                     0.3, false, droidsim::DefaultUarch()));
  apis.small_file_read = registry->Register(IoApi("java.io.BufferedReader", "readLine",
                                                  ApiKind::kFileIo, DeviceKind::kFlash, 1, 8,
                                                  0.2, 2, 8, 0.3, false));
  apis.json_get = registry->Register(ComputeApi("org.json.JSONObject", "get", 2, 0.3, 4, 0.3,
                                                false, droidsim::DefaultUarch()));

  // --------------------- Previously unknown blocking APIs ---------------------
  apis.html_clean = registry->Register(ComputeApi("org.htmlcleaner.HtmlCleaner", "clean", 1000,
                                                  0.30, 6000, 0.6, false,
                                                  droidsim::ParserUarch()));
  apis.mime_decode = registry->Register(ComputeApi("com.fsck.k9.mail.internet.MimeUtility",
                                                   "decodeBody", 450, 0.35, 3200, 0.55, false,
                                                   droidsim::ParserUarch()));
  apis.gson_tojson = registry->Register(ComputeApi("com.google.gson.Gson", "toJson", 800, 0.40,
                                                   5200, 0.5, false, droidsim::ParserUarch()));
  apis.gson_fromjson = registry->Register(ComputeApi("com.google.gson.Gson", "fromJson", 600,
                                                     0.35, 4100, 0.5, false,
                                                     droidsim::ParserUarch()));
  {
    // The SageMath shape: a harmless-looking library accessor whose implementation performs
    // a known-blocking database insert. The child is attached by the app builder.
    ApiSpec api = ComputeApi("nl.qbusict.cupboard.Cupboard", "get", 10, 0.3, 64, 0.3, false,
                             droidsim::DatabaseUarch());
    apis.cupboard_get = registry->Register(std::move(api));
  }
  apis.andstatus_download = registry->Register(
      IoApi("org.andstatus.app.data.DownloadData", "load", ApiKind::kFileIo, DeviceKind::kFlash,
            26, 300, 0.1, 20, 350, 0.15, false));
  {
    ApiSpec api = ComputeApi("org.andstatus.app.graphics.ImageCache", "transform", 90, 0.35,
                             7200, 0.05, false, droidsim::DecoderUarch());
    apis.andstatus_transform = registry->Register(std::move(api));
  }
  apis.tile_load = registry->Register(IoApi("org.osmdroid.tileprovider.MapTileCache",
                                            "loadTile", ApiKind::kFileIo, DeviceKind::kFlash,
                                            22, 500, 0.2, 25, 400, 0.12, false));
  apis.gpx_read = registry->Register(IoApi("net.cyclestreets.io.GpxReader", "read",
                                           ApiKind::kFileIo, DeviceKind::kFlash, 24, 700, 0.1,
                                           30, 350, 0.12, false));
  apis.omni_thumbnails = registry->Register(
      ComputeApi("it.feio.android.omninotes.utils.AttachmentLoader", "decodeThumbnails", 80,
                 0.35, 6100, 0.05, false, droidsim::DecoderUarch()));
  apis.omni_merge =
      registry->Register(ComputeApi("it.feio.android.omninotes.utils.NoteMerger", "mergeAll",
                                    70, 0.35, 5200, 0.05, false, droidsim::ParserUarch()));
  apis.omni_import = registry->Register(
      ComputeApi("it.feio.android.omninotes.backup.BackupImporter", "importAll", 95, 0.35,
                 8200, 0.05, false, droidsim::ParserUarch()));
  apis.qksms_to_xml =
      registry->Register(ComputeApi("com.moez.qksms.backup.SmsBackup", "toXml", 500, 0.35,
                                    1200, 0.8, false, droidsim::ParserUarch()));
  {
    ApiSpec api = IoApi("com.moez.qksms.mms.MmsLoader", "loadParts", ApiKind::kFileIo,
                        DeviceKind::kFlash, 18, 900, 0.1, 260, 1400, 0.6, false);
    api.cost.uarch = droidsim::DecoderUarch();
    apis.qksms_load_parts = registry->Register(std::move(api));
  }
  {
    ApiSpec api = IoApi("com.moez.qksms.data.ConversationIndexer", "rebuild",
                        ApiKind::kDatabase, DeviceKind::kDatabase, 8, 128, 0.0, 400, 1000, 0.7,
                        false);
    api.cost.uarch = droidsim::DatabaseUarch();
    apis.qksms_reindex = registry->Register(std::move(api));
  }
  apis.feed_parse =
      registry->Register(ComputeApi("de.danoeh.antennapod.parser.FeedParser", "parseLargeFeed",
                                    600, 0.35, 1100, 0.8, false, droidsim::ParserUarch()));
  {
    ApiSpec api = ComputeApi("de.danoeh.antennapod.core.ChapterReader", "readChapters", 350,
                             0.35, 900, 0.9, false, droidsim::ParserUarch());
    api.cost.device = DeviceKind::kFlash;
    api.cost.io_rounds = 6;
    api.cost.io_bytes_mean = 256 * 1024;
    apis.chapter_read = registry->Register(std::move(api));
  }
  {
    ApiSpec api = IoApi("com.j256.ormlite.dao.Dao", "queryForAll", ApiKind::kDatabase,
                        DeviceKind::kDatabase, 13, 200, 0.0, 30, 300, 0.1, false);
    api.cost.uarch = droidsim::DatabaseUarch();
    apis.ormlite_query = registry->Register(std::move(api));
  }
  {
    ApiSpec api = ComputeApi("ca.uoit.booking.IcsParser", "parse", 550, 0.35, 4600, 0.6, false,
                             droidsim::ParserUarch());
    api.cost.device = DeviceKind::kFlash;
    api.cost.io_rounds = 6;
    api.cost.io_bytes_mean = 256 * 1024;
    apis.ics_parse = registry->Register(std::move(api));
  }
  apis.radio_icon_decode = registry->Register(
      ComputeApi("net.programmierecke.radiodroid.StationIconCache", "decodeAll", 85, 0.35,
                 6600, 0.05, false, droidsim::DecoderUarch()));
  apis.git_diff_load = registry->Register(IoApi("net.oschina.git.DiffLoader", "loadDiff",
                                                ApiKind::kFileIo, DeviceKind::kFlash, 20, 400,
                                                0.1, 25, 380, 0.12, false));
  {
    ApiSpec api = ComputeApi("free.rm.skytube.businessobjects.VideoInfoParser", "parse", 700,
                             0.35, 5100, 0.7, false, droidsim::ParserUarch());
    api.cost.device = DeviceKind::kFlash;
    api.cost.io_rounds = 5;
    api.cost.io_bytes_mean = 384 * 1024;
    apis.video_info_parse = registry->Register(std::move(api));
  }
  // Lens-Launcher: a visible open-source library wrapper around the known decode API.
  apis.launcher_glide_load = registry->Register(ComputeApi(
      "com.bumptech.glide.IconLoader", "loadSync", 12, 0.3, 128, 0.3, false,
      droidsim::DefaultUarch()));

  // ------------------------- Async substrate APIs -------------------------
  // Post and wait frames of the async study apps (DESIGN.md section 3.8). Their cost models
  // are irrelevant — the op executor charges fixed submit/resume costs for async nodes — but
  // the names are what stack traces and wait-site provenance render. None is known-blocking:
  // Future.get blocks by design, and the point of the waiting-chain walk is that the *posted
  // task*, not the wait frame, is the bug.
  apis.executor_submit = registry->Register(ComputeApi(
      "java.util.concurrent.ExecutorService", "submit", 0, 0.1, 1, 2.0, false,
      droidsim::DefaultUarch()));
  apis.handler_post_delayed = registry->Register(ComputeApi(
      "android.os.Handler", "postDelayed", 0, 0.1, 1, 2.0, false, droidsim::DefaultUarch()));
  apis.future_get = registry->Register(ComputeApi("java.util.concurrent.Future", "get", 0, 0.1,
                                                  1, 2.0, false, droidsim::DefaultUarch()));

  // ------------------------- Async culprit APIs -------------------------
  apis.vault_decrypt = registry->Register(ComputeApi("com.photovault.crypto.MediaVault",
                                                     "decryptAlbum", 360, 0.30, 2400, 0.6,
                                                     false, droidsim::ParserUarch()));
  {
    ApiSpec api = ComputeApi("com.tickersync.data.QuoteBackfill", "recomputeAll", 430, 0.30,
                             1800, 0.7, false, droidsim::DatabaseUarch());
    api.cost.device = DeviceKind::kDatabase;
    api.cost.io_rounds = 6;
    api.cost.io_bytes_mean = 128 * 1024;
    apis.ticker_backfill = registry->Register(std::move(api));
  }

  return apis;
}

}  // namespace workload
