// Bug-free filler apps bringing the tested corpus to the paper's 114. Generated procedurally
// with a fixed seed: each app draws a handful of UI actions with varied compositions, so the
// fleet study exercises the detectors on realistic, hang-prone-but-benign apps rather than
// copy-pasted clones.
#include "src/workload/catalog.h"

#include "src/simkit/rng.h"

namespace workload {

namespace {

constexpr int32_t kFillerApps = 90;

const char* kCategories[] = {"Tools",  "Productivity", "Social",    "Music & Audio",
                             "Travel", "Education",    "Lifestyle", "Finance"};

}  // namespace

void BuildFillerApps(CatalogState* state) {
  const StandardApis& api = state->apis;
  const droidsim::ApiSpec* ui_pool[] = {
      api.ui_set_text,    api.ui_inflate,      api.ui_seekbar_init, api.ui_list_layout,
      api.ui_measure,     api.ui_draw,         api.ui_recycler_bind, api.ui_animate,
      api.ui_notify_changed, api.ui_request_layout,
  };
  const droidsim::ApiSpec* light_pool[] = {api.string_format, api.json_get,
                                           api.small_file_read};
  simkit::Rng rng(0xF111E4, /*stream=*/7);
  for (int32_t i = 0; i < kFillerApps; ++i) {
    std::string name = "Filler-" + std::to_string(i);
    std::string package = "com.filler.app" + std::to_string(i);
    droidsim::AppSpec* app =
        state->NewApp(name, package, kCategories[i % 8],
                      "f" + std::to_string(1000000 + i * 7919), 100 * (1 + i % 50));
    int64_t actions = rng.UniformInt(3, 5);
    for (int64_t a = 0; a < actions; ++a) {
      droidsim::ActionSpec action;
      action.name = "Action" + std::to_string(a);
      action.weight = 1.0 + static_cast<double>(rng.UniformInt(0, 2));
      droidsim::InputEventSpec event;
      event.handler = a == 0 ? "onResume" : "onClick";
      event.handler_file = "Activity" + std::to_string(a) + ".java";
      event.handler_line = static_cast<int32_t>(rng.UniformInt(20, 200));
      int64_t ops = rng.UniformInt(1, 3);
      for (int64_t o = 0; o < ops; ++o) {
        const droidsim::ApiSpec* chosen =
            rng.Bernoulli(0.8) ? ui_pool[rng.UniformInt(0, 9)]
                               : light_pool[rng.UniformInt(0, 2)];
        event.ops.push_back(droidsim::MakeOp(
            chosen, event.handler_file, static_cast<int32_t>(rng.UniformInt(20, 400))));
      }
      action.events.push_back(std::move(event));
      app->actions.push_back(std::move(action));
    }
    state->filler.push_back(app);
  }
}

}  // namespace workload
