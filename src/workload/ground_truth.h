// Ground truth for detection-quality metrics, mirroring the paper's methodology (Section
// 4.1): every action execution is labeled by its response time and — for soft hangs — by the
// operation that actually dominated the main thread, determined here from the executor's
// contribution log (the paper does this by manual code review and fix-and-verify). The
// recorder also captures each execution's main-thread utilization, which calibrates the UTL /
// UTH baseline thresholds exactly as the paper derives them from observed bug hangs.
#ifndef SRC_WORKLOAD_GROUND_TRUTH_H_
#define SRC_WORKLOAD_GROUND_TRUTH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/baselines/utilization_detector.h"
#include "src/droidsim/app.h"
#include "src/droidsim/phone.h"

namespace workload {

struct HangLabel {
  int64_t execution_id = 0;
  int32_t action_uid = -1;
  simkit::SimDuration response = 0;
  bool hang = false;
  // The dominant operation of the execution (empty when no ops contributed).
  std::string cause_api;
  std::string cause_file;
  int32_t cause_line = 0;
  bool cause_is_bug = false;  // dominant op is a non-UI operation on the main thread
  // Main-thread utilization over the execution window (for UT threshold calibration).
  baselines::UtilizationSample utilization;
};

class GroundTruthRecorder : public droidsim::AppObserver {
 public:
  GroundTruthRecorder(droidsim::Phone* phone, droidsim::App* app);
  ~GroundTruthRecorder() override;

  const std::vector<HangLabel>& labels() const { return labels_; }
  const HangLabel* Find(int64_t execution_id) const;

  // Threshold calibration from observed bug hangs (Section 4.1): UTL = the minimum
  // utilization seen during any bug hang; UTH = 90% of the peak.
  baselines::UtilizationThresholds LowThresholds() const;
  baselines::UtilizationThresholds HighThresholds() const;
  int64_t bug_hangs() const;

  // droidsim::AppObserver:
  void OnInputEventStart(droidsim::App& app, const droidsim::ActionExecution& execution,
                         int32_t event_index) override;
  void OnActionQuiesced(droidsim::App& app, const droidsim::ActionExecution& execution) override;

 private:
  droidsim::Phone* phone_;
  droidsim::App* app_;
  std::vector<HangLabel> labels_;
  std::unordered_map<int64_t, size_t> by_execution_;
  std::unordered_map<int64_t, kernelsim::ThreadStats> start_stats_;
  std::unordered_map<int64_t, simkit::SimTime> start_time_;
};

}  // namespace workload

#endif  // SRC_WORKLOAD_GROUND_TRUTH_H_
