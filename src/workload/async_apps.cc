// The async study apps of DESIGN.md section 3.8: apps whose soft hangs happen *off* the main
// thread, behind a future the main thread blocks on. Each reproduces one waiting-chain shape
// the causal diagnosis must resolve — the culprit is always the posted task's blocking frame,
// never the Future.get frame the main-thread traces actually show:
//  - PhotoVault:  classic future-blocked main thread (submit heavy work, do a little UI,
//                 then get() before the task is done);
//  - TickerSync:  serial-executor convoy (a fire-and-forget long task occupies the single
//                 executor thread; the task the main thread waits on queues behind it);
//  - LumaSlides:  delayed-post self-jank (the app defers its own flush with postDelayed,
//                 then blocks on it — scheduling latency plus the flush exceed the bound).
// Hang actions avoid frame-posting UI ops on purpose: a wait-blocked main thread shows few
// context switches, so the S-Checker filter's main−render difference only stays positive when
// the render thread is idle — which is also the realistic shape (nothing renders while the
// main thread is parked in get()).
#include "src/workload/catalog.h"

namespace workload {

namespace {

using droidsim::ActionSpec;
using droidsim::ApiSpec;
using droidsim::InputEventSpec;
using droidsim::OpNode;

OpNode Op(const ApiSpec* api, const std::string& file, int32_t line) {
  return droidsim::MakeOp(api, file, line);
}

OpNode Bug(const ApiSpec* api, const std::string& file, int32_t line, double manifest) {
  OpNode node = droidsim::MakeOp(api, file, line);
  node.manifest_probability = manifest;
  return node;
}

InputEventSpec Ev(const std::string& handler, const std::string& file, int32_t line,
                  std::vector<OpNode> ops) {
  InputEventSpec event;
  event.handler = handler;
  event.handler_file = file;
  event.handler_line = line;
  event.ops = std::move(ops);
  return event;
}

ActionSpec Act(const std::string& name, double weight, std::vector<InputEventSpec> events) {
  ActionSpec action;
  action.name = name;
  action.weight = weight;
  action.events = std::move(events);
  return action;
}

void AddBug(CatalogState* state, const std::string& app, const std::string& issue,
            const ApiSpec* api, const std::string& file, int32_t line, bool known,
            bool missed_offline, bool self_developed = false) {
  BugSpec bug;
  bug.app_name = app;
  bug.issue_id = issue;
  bug.api = api->FullName();
  bug.file = file;
  bug.line = line;
  bug.known_blocking = known;
  bug.missed_offline = missed_offline;
  bug.self_developed = self_developed;
  state->async_bugs.push_back(std::move(bug));
}

}  // namespace

void BuildAsyncApps(CatalogState* state) {
  const StandardApis& api = state->apis;

  // ------------------- PhotoVault: future-blocked main thread -------------------
  // onClick submits the album decrypt to the executor pool, binds a trivial label, then
  // calls get() — when the decrypt manifests (~360 ms) the main thread blocks far past the
  // 100 ms bound while every main-thread sample shows only Future.get.
  {
    droidsim::AppSpec* app =
        state->NewApp("PhotoVault", "com.photovault.android", "Photography", "a91c2e4", 50000);
    app->executor_threads = 2;
    app->actions.push_back(Act(
        "OpenAlbum", 2.0,
        {Ev("onClick", "VaultActivity.java", 64,
            {Op(api.ui_set_text, "VaultActivity.java", 71),
             droidsim::MakeAsyncSubmit(
                 api.executor_submit, "AlbumLoader.java", 58, /*slot=*/0,
                 {Bug(api.vault_decrypt, "MediaVault.java", 131, 0.55)}),
             Op(api.ui_set_text, "AlbumHeader.java", 27),
             droidsim::MakeFutureWait(api.future_get, "VaultActivity.java", 92, /*slot=*/0)})}));
    app->actions.push_back(Act(
        "BrowseGrid", 5.0, {Ev("onResume", "GridFragment.java", 38,
                               {Op(api.ui_inflate, "GridFragment.java", 45),
                                Op(api.ui_list_layout, "GridFragment.java", 53)})}));
    state->async_study.push_back(app);
    AddBug(state, "PhotoVault", "async-1", api.vault_decrypt, "MediaVault.java", 131,
           /*known=*/false, /*missed_offline=*/true);
  }

  // ------------------- TickerSync: serial-executor convoy -------------------
  // One executor thread. onRefresh fires a long backfill without waiting, then submits the
  // quick snapshot it actually needs and blocks on it — the snapshot queues behind the
  // backfill, so the thread the wait resolves to is running the *other* task's frames. The
  // diagnosis must attribute the convoy occupant, not the awaited task or the wait frame.
  {
    droidsim::AppSpec* app =
        state->NewApp("TickerSync", "com.tickersync.android", "Finance", "7f03b9d", 100000);
    app->executor_threads = 1;
    app->actions.push_back(Act(
        "RefreshQuotes", 2.0,
        {Ev("onRefresh", "TickerFragment.java", 88,
            {droidsim::MakeAsyncSubmit(
                 api.executor_submit, "QuoteRepository.java", 41, /*slot=*/0,
                 {Bug(api.ticker_backfill, "QuoteBackfill.java", 117, 0.55)}),
             Op(api.ui_set_text, "TickerFragment.java", 92),
             droidsim::MakeAsyncSubmit(api.executor_submit, "QuoteRepository.java", 53,
                                       /*slot=*/1,
                                       {Op(api.json_get, "QuoteSnapshot.java", 29)}),
             droidsim::MakeFutureWait(api.future_get, "TickerFragment.java", 96,
                                      /*slot=*/1)})}));
    app->actions.push_back(Act(
        "OpenWatchlist", 5.0, {Ev("onResume", "WatchlistActivity.java", 41,
                                  {Op(api.ui_inflate, "WatchlistActivity.java", 49),
                                   Op(api.ui_recycler_bind, "WatchlistActivity.java", 57)})}));
    state->async_study.push_back(app);
    AddBug(state, "TickerSync", "async-2", api.ticker_backfill, "QuoteBackfill.java", 117,
           /*known=*/false, /*missed_offline=*/true);
  }

  // ------------------- LumaSlides: delayed-post self-jank -------------------
  // The deck flush is a self-developed operation the app defers to its HandlerThread with
  // postDelayed(50 ms), then blocks on. The worker sampler sees nothing until the delay
  // fires (idle-thread samples are empty and skipped by the analyzer), then the flush frames
  // dominate. Dormant executions stay under the bound (~70 ms), so the hang is occasional.
  {
    droidsim::AppSpec* app =
        state->NewApp("LumaSlides", "com.lumaslides.android", "Productivity", "3be8d17", 10000);
    app->handler_threads = 1;
    const ApiSpec* flush = MakeSelfDevelopedApi(&state->registry,
                                                "com.lumaslides.deck.SlideCache", "flushDeck",
                                                simkit::Milliseconds(300), 3200 * 1024, 0.4);
    app->actions.push_back(Act(
        "NextSlide", 2.0,
        {Ev("onClick", "DeckActivity.java", 73,
            {Op(api.ui_set_text, "DeckActivity.java", 78),
             droidsim::MakeAsyncSubmit(api.handler_post_delayed, "SlideScheduler.java", 66,
                                       /*slot=*/0, {Bug(flush, "SlideCache.java", 208, 0.6)},
                                       /*target=*/0, simkit::Milliseconds(50)),
             droidsim::MakeFutureWait(api.future_get, "DeckActivity.java", 88, /*slot=*/0)})}));
    app->actions.push_back(Act(
        "BrowseDecks", 5.0, {Ev("onResume", "DeckListFragment.java", 33,
                                {Op(api.ui_inflate, "DeckListFragment.java", 40),
                                 Op(api.ui_list_layout, "DeckListFragment.java", 48)})}));
    state->async_study.push_back(app);
    AddBug(state, "LumaSlides", "async-3", flush, "SlideCache.java", 208, /*known=*/false,
           /*missed_offline=*/true, /*self_developed=*/true);
  }
}

}  // namespace workload
