#include "src/workload/experiment.h"

#include <unordered_map>

namespace workload {

DetectionStats& DetectionStats::operator+=(const DetectionStats& other) {
  true_positives += other.true_positives;
  false_positives += other.false_positives;
  false_negatives += other.false_negatives;
  bug_hangs += other.bug_hangs;
  ui_hangs += other.ui_hangs;
  overhead_pct += other.overhead_pct;  // callers average when aggregating
  return *this;
}

TraceUsage AppUsage(droidsim::Phone& phone, droidsim::App& app) {
  TraceUsage usage;
  for (kernelsim::ThreadId tid :
       {app.main_tid(), app.render_tid(), app.worker_looper().tid()}) {
    kernelsim::ThreadStats stats = phone.kernel().ThreadStatsSnapshot(tid);
    usage.cpu += stats.cpu_time;
    usage.bytes += stats.allocated_bytes +
                   (stats.minor_faults + stats.major_faults) * kernelsim::kPageSize;
  }
  return usage;
}

namespace {

template <typename GetTraced>
DetectionStats Score(const GroundTruthRecorder& truth, GetTraced traced_for) {
  DetectionStats stats;
  for (const HangLabel& label : truth.labels()) {
    if (!label.hang) {
      continue;
    }
    bool traced = traced_for(label.execution_id);
    if (label.cause_is_bug) {
      ++stats.bug_hangs;
      if (traced) {
        ++stats.true_positives;
      } else {
        ++stats.false_negatives;
      }
    } else {
      ++stats.ui_hangs;
      if (traced) {
        ++stats.false_positives;
      }
    }
  }
  return stats;
}

}  // namespace

DetectionStats ScoreDetector(const GroundTruthRecorder& truth,
                             std::span<const baselines::DetectionOutcome> outcomes,
                             int64_t spurious_detections) {
  std::unordered_map<int64_t, bool> traced;
  for (const baselines::DetectionOutcome& outcome : outcomes) {
    traced[outcome.execution_id] = outcome.traced;
  }
  DetectionStats stats = Score(truth, [&traced](int64_t execution_id) {
    auto it = traced.find(execution_id);
    return it != traced.end() && it->second;
  });
  stats.false_positives += spurious_detections;
  return stats;
}

DetectionStats ScoreHangDoctor(const GroundTruthRecorder& truth,
                               std::span<const hangdoctor::ExecutionRecord> records) {
  std::unordered_map<int64_t, bool> traced;
  for (const hangdoctor::ExecutionRecord& record : records) {
    traced[record.execution_id] = record.traced;
  }
  return Score(truth, [&traced](int64_t execution_id) {
    auto it = traced.find(execution_id);
    return it != traced.end() && it->second;
  });
}

SingleAppHarness::SingleAppHarness(const droidsim::DeviceProfile& profile,
                                   const droidsim::AppSpec* spec, uint64_t seed)
    : seed_(seed) {
  phone_ = std::make_unique<droidsim::Phone>(profile, seed);
  app_ = phone_->InstallApp(spec);
  truth_ = std::make_unique<GroundTruthRecorder>(phone_.get(), app_);
}

void SingleAppHarness::RunUserSession(simkit::SimDuration duration, UserSessionConfig config) {
  UserSession user(phone_.get(), app_, phone_->ForkRng(0x757365ULL ^ seed_), config);
  phone_->RunFor(duration);
  // Let the last action's dispatch and render work drain so every execution quiesces.
  phone_->RunFor(simkit::Seconds(10));
}

void SingleAppHarness::RunScript(const std::vector<int32_t>& script, simkit::SimDuration think,
                                 simkit::SimDuration tail) {
  UserSessionConfig config;
  config.mean_think = think;
  config.min_think = think;
  UserSession user(phone_.get(), app_, script, config);
  phone_->RunFor(think * static_cast<int64_t>(script.size() + 1) + tail);
}

TraceUsage SingleAppHarness::Usage() { return AppUsage(*phone_, *app_); }

CalibratedThresholds CalibrateUtilization(const droidsim::DeviceProfile& profile,
                                          const droidsim::AppSpec* spec, uint64_t seed,
                                          simkit::SimDuration duration) {
  SingleAppHarness harness(profile, spec, seed);
  harness.RunUserSession(duration);
  CalibratedThresholds thresholds;
  thresholds.low = harness.truth().LowThresholds();
  thresholds.high = harness.truth().HighThresholds();
  return thresholds;
}

}  // namespace workload
