#include "src/workload/training.h"

#include <memory>
#include <string>

#include "src/perfsim/perf_session.h"
#include "src/workload/ground_truth.h"

namespace workload {

namespace {

using droidsim::ActionSpec;
using droidsim::ApiSpec;
using droidsim::InputEventSpec;
using droidsim::OpNode;

// Blocks until the next quiesce of `app`, bracketing the execution with `session`.
class QuiesceWaiter : public droidsim::AppObserver {
 public:
  explicit QuiesceWaiter(droidsim::App* app) : app_(app) { app_->AddObserver(this); }
  ~QuiesceWaiter() override { app_->RemoveObserver(this); }

  void OnActionQuiesced(droidsim::App& app, const droidsim::ActionExecution& execution) override {
    (void)app;
    done_ = true;
    response_ = execution.max_response;
  }

  void Reset() { done_ = false; }
  bool done() const { return done_; }
  simkit::SimDuration response() const { return response_; }

 private:
  droidsim::App* app_;
  bool done_ = false;
  simkit::SimDuration response_ = 0;
};

// Executes action `uid` once under an all-events PerfSession; returns true and fills the
// readings if the action quiesced with a soft hang (> 100 ms).
bool MeasureOneExecution(droidsim::Phone* phone, droidsim::App* app, int32_t uid,
                         uint64_t session_seed, telemetry::CounterArray* diff,
                         telemetry::CounterArray* main_only, simkit::SimDuration* response) {
  perfsim::PerfSession session(&phone->counter_hub(), phone->profile().pmu, session_seed);
  session.AddThread(app->main_tid());
  session.AddThread(app->render_tid());
  session.AddAllEvents();
  QuiesceWaiter waiter(app);
  session.Start();
  app->PerformAction(uid);
  while (!waiter.done() && phone->sim().Step()) {
  }
  session.Stop();
  *response = waiter.response();
  if (waiter.response() <= simkit::kPerceivableDelay) {
    return false;
  }
  for (telemetry::PerfEventType event : telemetry::AllPerfEvents()) {
    auto idx = static_cast<size_t>(event);
    (*diff)[idx] = session.ReadDifference(app->main_tid(), app->render_tid(), event);
    (*main_only)[idx] = session.Read(app->main_tid(), event);
  }
  return true;
}

// One entry of the synthetic training app: `copies` sequential invocations of `api` reach a
// comfortably perceivable response time even for light operations.
struct TrainingOp {
  const ApiSpec* api = nullptr;
  int32_t copies = 1;
  bool is_bug = false;
  // UI work accompanying a bug action (real bug actions come with some rendering).
  const ApiSpec* garnish = nullptr;
};

ActionSpec MakeTrainingAction(const TrainingOp& op) {
  const ApiSpec* ui_garnish = op.garnish;
  ActionSpec action;
  action.name = std::string(op.is_bug ? "bug-" : "ui-") + op.api->name;
  InputEventSpec event;
  event.handler = "onClick";
  event.handler_file = "TrainingActivity.java";
  event.handler_line = 10;
  if (op.is_bug && ui_garnish != nullptr) {
    // Real bug actions carry a little UI work too (the paper's training hangs come from
    // complete user actions, not bare API calls).
    event.ops.push_back(droidsim::MakeOp(ui_garnish, "TrainingActivity.java", 14));
  }
  for (int32_t i = 0; i < op.copies; ++i) {
    event.ops.push_back(droidsim::MakeOp(op.api, "TrainingActivity.java", 20 + i));
  }
  action.events.push_back(std::move(event));
  return action;
}

}  // namespace

TrainingData CollectTrainingSamples(const Catalog& catalog, const TrainingConfig& config) {
  const StandardApis& api = catalog.std_apis();
  // The paper's training set: 10 well-known soft hang bugs + 11 UI-APIs (Section 3.3.1).
  const TrainingOp kOps[] = {
      {api.camera_open, 1, true, api.ui_set_text},
      {api.camera_set_parameters, 2, true, api.ui_set_text},
      // Bitmap decode is a tight SIMD loop inside a list-scrolling action: the render thread
      // stays busy, so this bug is invisible to the context-switch condition (the reason the
      // trained filter needs more than one event, as in the paper).
      {api.bitmap_decode_file, 1, true, api.ui_list_layout},
      {api.db_query, 1, true, api.ui_set_text},
      {api.db_insert, 1, true, api.ui_set_text},
      {api.prefs_commit, 6, true, api.ui_set_text},
      {api.media_prepare, 1, true, api.ui_set_text},
      {api.bt_accept, 1, true, api.ui_set_text},
      {api.file_read, 5, true, api.ui_set_text},
      {api.obj_write, 3, true, api.ui_set_text},
      {api.ui_set_text, 30, false},
      {api.ui_inflate, 2, false},
      {api.ui_seekbar_init, 14, false},
      {api.ui_orientation_enable, 20, false},
      {api.ui_list_layout, 3, false},
      {api.ui_measure, 5, false},
      {api.ui_draw, 6, false},
      {api.ui_webview_layout, 1, false},
      {api.ui_recycler_bind, 3, false},
      {api.ui_gallery_bind, 2, false},
      {api.ui_notify_changed, 4, false},
  };

  droidsim::AppSpec spec;
  spec.name = "TrainingApp";
  spec.package = "edu.osu.pacs.training";
  spec.category = "Training";
  for (const TrainingOp& op : kOps) {
    spec.actions.push_back(MakeTrainingAction(op));
  }

  droidsim::Phone phone(config.profile, config.seed);
  droidsim::App* app = phone.InstallApp(&spec);
  simkit::Rng rng(config.seed, /*stream=*/0x747261696eULL);

  TrainingData data;
  for (int32_t uid = 0; uid < app->num_actions(); ++uid) {
    const TrainingOp& op = kOps[uid];
    for (int32_t k = 0; k < config.executions_per_op; ++k) {
      telemetry::CounterArray diff{};
      telemetry::CounterArray main_only{};
      simkit::SimDuration response = 0;
      if (!MeasureOneExecution(&phone, app, uid, rng.NextU64(), &diff, &main_only,
                               &response)) {
        continue;
      }
      hangdoctor::LabeledSample diff_sample;
      diff_sample.readings = diff;
      diff_sample.is_bug = op.is_bug;
      diff_sample.source = op.api->FullName();
      data.diff_samples.push_back(std::move(diff_sample));
      hangdoctor::LabeledSample main_sample;
      main_sample.readings = main_only;
      main_sample.is_bug = op.is_bug;
      main_sample.source = op.api->FullName();
      data.main_only_samples.push_back(std::move(main_sample));
    }
  }
  return data;
}

TrainingData CollectValidationSamples(const Catalog& catalog, const TrainingConfig& config) {
  TrainingData data;
  simkit::Rng rng(config.seed ^ 0x76616cULL, /*stream=*/0x76616cULL);
  for (const droidsim::AppSpec* spec : catalog.study_apps()) {
    std::vector<BugSpec> bugs = catalog.BugsOf(spec->name);
    droidsim::Phone phone(config.profile, rng.NextU64());
    droidsim::App* app = phone.InstallApp(spec);
    GroundTruthRecorder truth(&phone, app);
    for (int32_t uid = 0; uid < app->num_actions(); ++uid) {
      for (int32_t k = 0; k < config.executions_per_op; ++k) {
        telemetry::CounterArray diff{};
        telemetry::CounterArray main_only{};
        simkit::SimDuration response = 0;
        if (!MeasureOneExecution(&phone, app, uid, rng.NextU64(), &diff, &main_only,
                                 &response)) {
          continue;
        }
        const HangLabel& label = truth.labels().back();
        // Keep only hangs whose dominant cause is a previously unknown study bug.
        const BugSpec* matched = nullptr;
        for (const BugSpec& bug : bugs) {
          if (bug.missed_offline && bug.api == label.cause_api &&
              bug.file == label.cause_file && bug.line == label.cause_line) {
            matched = &bug;
            break;
          }
        }
        if (matched == nullptr) {
          continue;
        }
        std::string source = spec->name + "/" + matched->api + "@" + matched->file + ":" +
                             std::to_string(matched->line);
        hangdoctor::LabeledSample diff_sample;
        diff_sample.readings = diff;
        diff_sample.is_bug = true;
        diff_sample.source = source;
        data.diff_samples.push_back(std::move(diff_sample));
        hangdoctor::LabeledSample main_sample;
        main_sample.readings = main_only;
        main_sample.is_bug = true;
        main_sample.source = std::move(source);
        data.main_only_samples.push_back(std::move(main_sample));
      }
    }
  }
  return data;
}

}  // namespace workload
