// The standard API catalog: cost models for every UI API, known blocking API and
// previously-unknown blocking API used by the study, motivation and filler apps. The
// known/unknown split mirrors the paper's world: "known" APIs are in the community blocking
// database that offline detectors search; "unknown" ones are Hang Doctor's discoveries
// (HtmlCleaner.clean, Gson.toJson, cupboard.get, ...).
//
// Cost models are tuned so each bug produces the per-event signature Table 6 reports:
//  - I/O-round-trip-bound bugs (map tiles, DB wrappers, diffs)  -> context-switch only;
//  - CPU-heavy parser/serializer bugs                           -> + task-clock;
//  - allocation-heavy decode/merge bugs inside UI-busy actions  -> page-faults only.
#ifndef SRC_WORKLOAD_API_CATALOG_H_
#define SRC_WORKLOAD_API_CATALOG_H_

#include "src/droidsim/api.h"

namespace workload {

struct StandardApis {
  // --- UI APIs (the 11+ UI operations of the training set; never soft hang bugs) ---
  const droidsim::ApiSpec* ui_set_text = nullptr;
  const droidsim::ApiSpec* ui_inflate = nullptr;
  const droidsim::ApiSpec* ui_seekbar_init = nullptr;
  const droidsim::ApiSpec* ui_orientation_enable = nullptr;
  const droidsim::ApiSpec* ui_list_layout = nullptr;
  const droidsim::ApiSpec* ui_measure = nullptr;
  const droidsim::ApiSpec* ui_draw = nullptr;
  const droidsim::ApiSpec* ui_webview_layout = nullptr;
  const droidsim::ApiSpec* ui_recycler_bind = nullptr;
  const droidsim::ApiSpec* ui_animate = nullptr;
  const droidsim::ApiSpec* ui_notify_changed = nullptr;
  const droidsim::ApiSpec* ui_request_layout = nullptr;
  const droidsim::ApiSpec* ui_gallery_bind = nullptr;

  // --- Known blocking APIs (the historical database; offline-detectable) ---
  const droidsim::ApiSpec* camera_open = nullptr;
  const droidsim::ApiSpec* camera_set_parameters = nullptr;
  const droidsim::ApiSpec* bitmap_decode_file = nullptr;
  const droidsim::ApiSpec* db_query = nullptr;
  const droidsim::ApiSpec* db_insert = nullptr;
  const droidsim::ApiSpec* prefs_commit = nullptr;
  const droidsim::ApiSpec* media_prepare = nullptr;
  const droidsim::ApiSpec* bt_accept = nullptr;
  const droidsim::ApiSpec* file_read = nullptr;
  const droidsim::ApiSpec* obj_write = nullptr;

  // --- Light helper ops (never hang by themselves) ---
  const droidsim::ApiSpec* string_format = nullptr;
  const droidsim::ApiSpec* small_file_read = nullptr;
  const droidsim::ApiSpec* json_get = nullptr;

  // --- Previously unknown blocking APIs (Hang Doctor's discoveries, Tables 5/6) ---
  const droidsim::ApiSpec* html_clean = nullptr;       // K9-mail #1007
  const droidsim::ApiSpec* mime_decode = nullptr;      // K9-mail #1007 (second bug)
  const droidsim::ApiSpec* gson_tojson = nullptr;      // SageMath #84
  const droidsim::ApiSpec* gson_fromjson = nullptr;    // UOITDC Booking #3
  const droidsim::ApiSpec* cupboard_get = nullptr;     // SageMath #84 (library wrapper)
  const droidsim::ApiSpec* andstatus_download = nullptr;  // AndStatus #303 (ctx-only)
  const droidsim::ApiSpec* andstatus_transform = nullptr;  // AndStatus #303 (page-only)
  const droidsim::ApiSpec* tile_load = nullptr;        // CycleStreets #117
  const droidsim::ApiSpec* gpx_read = nullptr;         // CycleStreets #117
  const droidsim::ApiSpec* omni_thumbnails = nullptr;  // Omni-Notes #253 (page-only)
  const droidsim::ApiSpec* omni_merge = nullptr;       // Omni-Notes #253 (page-only)
  const droidsim::ApiSpec* omni_import = nullptr;      // Omni-Notes #253 (page-only)
  const droidsim::ApiSpec* qksms_to_xml = nullptr;     // QKSMS #382
  const droidsim::ApiSpec* qksms_load_parts = nullptr;
  const droidsim::ApiSpec* qksms_reindex = nullptr;
  const droidsim::ApiSpec* feed_parse = nullptr;       // AntennaPod #1921 (ctx+task)
  const droidsim::ApiSpec* chapter_read = nullptr;     // AntennaPod #1921 (ctx+task)
  const droidsim::ApiSpec* ormlite_query = nullptr;    // Merchant #17 (ctx-only)
  const droidsim::ApiSpec* ics_parse = nullptr;        // UOITDC Booking #3
  const droidsim::ApiSpec* radio_icon_decode = nullptr;  // RadioDroid #29 (page-only)
  const droidsim::ApiSpec* git_diff_load = nullptr;    // Git@OSC #89 (ctx-only)
  const droidsim::ApiSpec* video_info_parse = nullptr;  // SkyTube #88
  const droidsim::ApiSpec* launcher_glide_load = nullptr;  // Lens-Launcher #15 (wrapper)

  // --- Async substrate APIs (post sites and waits of the section 3.8 study apps) ---
  const droidsim::ApiSpec* executor_submit = nullptr;      // ExecutorService.submit
  const droidsim::ApiSpec* handler_post_delayed = nullptr;  // Handler.postDelayed
  const droidsim::ApiSpec* future_get = nullptr;           // Future.get (the wait frame)

  // --- Async culprits: blocking work hidden behind a future the main thread waits on ---
  const droidsim::ApiSpec* vault_decrypt = nullptr;    // PhotoVault (future-blocked main)
  const droidsim::ApiSpec* ticker_backfill = nullptr;  // TickerSync (serial-executor convoy)
};

// Registers every standard API into `registry` and returns the handle struct.
StandardApis BuildStandardApis(droidsim::ApiRegistry* registry);

// Makes a self-developed compute API owned by an app (clazz under the app's package).
// Self-developed operations are invisible to offline scanners (no known API name).
const droidsim::ApiSpec* MakeSelfDevelopedApi(droidsim::ApiRegistry* registry,
                                              const std::string& clazz,
                                              const std::string& method,
                                              simkit::SimDuration cpu_mean, int64_t alloc_bytes,
                                              double syscalls_per_ms);

}  // namespace workload

#endif  // SRC_WORKLOAD_API_CATALOG_H_
