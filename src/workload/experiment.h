// Experiment glue: a one-app-per-phone harness with ground truth, detector scoring against
// that truth (the paper's TP/FP/FN counting over *traced* soft hangs), and resource-usage
// accounting for the Section 4.5 overhead percentages.
#ifndef SRC_WORKLOAD_EXPERIMENT_H_
#define SRC_WORKLOAD_EXPERIMENT_H_

#include <memory>
#include <span>
#include <string>

#include "src/baselines/detector.h"
#include "src/droidsim/phone.h"
#include "src/hosts/hang_doctor.h"
#include "src/workload/catalog.h"
#include "src/workload/ground_truth.h"
#include "src/workload/user_model.h"

namespace workload {

struct DetectionStats {
  int64_t true_positives = 0;   // traced soft hangs caused by bugs
  int64_t false_positives = 0;  // traced soft hangs caused by UI work
  int64_t false_negatives = 0;  // bug soft hangs that were not traced
  int64_t bug_hangs = 0;        // ground truth totals
  int64_t ui_hangs = 0;
  double overhead_pct = 0.0;

  DetectionStats& operator+=(const DetectionStats& other);
};

// Resource usage of the app's own threads over the run (denominator for overhead %).
struct TraceUsage {
  simkit::SimDuration cpu = 0;
  int64_t bytes = 0;
};

TraceUsage AppUsage(droidsim::Phone& phone, droidsim::App& app);

DetectionStats ScoreDetector(const GroundTruthRecorder& truth,
                             std::span<const baselines::DetectionOutcome> outcomes,
                             int64_t spurious_detections = 0);
DetectionStats ScoreHangDoctor(const GroundTruthRecorder& truth,
                               std::span<const hangdoctor::ExecutionRecord> records);

// One phone running one app with ground truth attached. Create detectors against phone()/app()
// after construction, then RunUserSession().
class SingleAppHarness {
 public:
  SingleAppHarness(const droidsim::DeviceProfile& profile, const droidsim::AppSpec* spec,
                   uint64_t seed);

  droidsim::Phone& phone() { return *phone_; }
  droidsim::App& app() { return *app_; }
  const GroundTruthRecorder& truth() const { return *truth_; }

  // Drives a stochastic user for `duration` of simulated time, then drains in-flight work.
  void RunUserSession(simkit::SimDuration duration, UserSessionConfig config = {});

  // Replays an exact action sequence.
  void RunScript(const std::vector<int32_t>& script, simkit::SimDuration think,
                 simkit::SimDuration tail = simkit::Seconds(5));

  TraceUsage Usage();

 private:
  std::unique_ptr<droidsim::Phone> phone_;
  droidsim::App* app_;
  std::unique_ptr<GroundTruthRecorder> truth_;
  uint64_t seed_;
};

// Calibrates the UT baselines' thresholds by observing bug hangs without any detector, as the
// paper derives UTL/UTH from utilizations "observed during soft hang bugs".
struct CalibratedThresholds {
  baselines::UtilizationThresholds low;
  baselines::UtilizationThresholds high;
};
CalibratedThresholds CalibrateUtilization(const droidsim::DeviceProfile& profile,
                                          const droidsim::AppSpec* spec, uint64_t seed,
                                          simkit::SimDuration duration);

}  // namespace workload

#endif  // SRC_WORKLOAD_EXPERIMENT_H_
