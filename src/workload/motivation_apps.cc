// The 8 motivation apps of Table 1, built so a deterministic user session reproduces Table
// 2's true/false positive counts per timeout: 19 well-known soft hang bugs whose hangs sit
// mostly in 100-500 ms (SeaDroid's exceeds 1 s, FrostWire's exceeds 500 ms), and 34
// hang-prone UI operations, 8 of which occasionally exceed 500 ms.
#include "src/workload/catalog.h"

namespace workload {

namespace {

using droidsim::ActionSpec;
using droidsim::ApiKind;
using droidsim::ApiSpec;
using droidsim::DeviceKind;
using droidsim::InputEventSpec;
using droidsim::OpNode;
using simkit::Milliseconds;

OpNode Op(const ApiSpec* api, const std::string& file, int32_t line) {
  return droidsim::MakeOp(api, file, line);
}

OpNode Bug(const ApiSpec* api, const std::string& file, int32_t line, double manifest) {
  OpNode node = droidsim::MakeOp(api, file, line);
  node.manifest_probability = manifest;
  return node;
}

InputEventSpec Ev(const std::string& handler, const std::string& file, int32_t line,
                  std::vector<OpNode> ops) {
  InputEventSpec event;
  event.handler = handler;
  event.handler_file = file;
  event.handler_line = line;
  event.ops = std::move(ops);
  return event;
}

ActionSpec Act(const std::string& name, double weight, std::vector<InputEventSpec> events) {
  ActionSpec action;
  action.name = name;
  action.weight = weight;
  action.events = std::move(events);
  return action;
}

// A known-blocking compute API specific to one motivation app.
const ApiSpec* KnownCompute(droidsim::ApiRegistry* registry, const std::string& clazz,
                            const std::string& method, int64_t cpu_ms, double sigma,
                            int64_t alloc_kb) {
  ApiSpec api;
  api.name = method;
  api.clazz = clazz;
  api.kind = ApiKind::kCompute;
  api.known_blocking = true;
  api.cost.cpu_mean = Milliseconds(cpu_ms);
  api.cost.cpu_sigma = sigma;
  api.cost.uarch = droidsim::ParserUarch();
  api.cost.alloc_bytes_mean = alloc_kb * 1024;
  api.cost.syscalls_per_ms = 0.5;
  return registry->Register(std::move(api));
}

// A known-blocking I/O API specific to one motivation app.
const ApiSpec* KnownIo(droidsim::ApiRegistry* registry, const std::string& clazz,
                       const std::string& method, DeviceKind device, int32_t rounds,
                       int64_t io_kb, int64_t cpu_ms, int64_t alloc_kb) {
  ApiSpec api;
  api.name = method;
  api.clazz = clazz;
  api.kind = device == DeviceKind::kDatabase ? ApiKind::kDatabase : ApiKind::kFileIo;
  api.known_blocking = true;
  api.cost.device = device;
  api.cost.io_rounds = rounds;
  api.cost.io_bytes_mean = io_kb * 1024;
  api.cost.cpu_mean = Milliseconds(cpu_ms);
  api.cost.cpu_sigma = 0.25;
  api.cost.uarch = droidsim::DefaultUarch();
  api.cost.alloc_bytes_mean = alloc_kb * 1024;
  api.cost.syscalls_per_ms = 0.3;
  return registry->Register(std::move(api));
}

struct MotivationBuilder {
  CatalogState* state;
  droidsim::AppSpec* app = nullptr;

  void AddBugAction(const std::string& action, const ApiSpec* bug_api,
                    const std::string& file, int32_t line, double manifest,
                    const ApiSpec* ui_extra) {
    std::vector<OpNode> ops;
    if (ui_extra != nullptr) {
      ops.push_back(Op(ui_extra, file, line + 20));
    }
    ops.push_back(Bug(bug_api, file, line, manifest));
    app->actions.push_back(Act(action, 1.5, {Ev("onClick", file, line - 10, std::move(ops))}));
    BugSpec bug;
    bug.app_name = app->name;
    bug.issue_id = "motivation";
    bug.api = bug_api->FullName();
    bug.file = file;
    bug.line = line;
    bug.known_blocking = bug_api->known_blocking;
    state->motivation_bugs.push_back(std::move(bug));
  }

  void AddUiAction(const std::string& action, const ApiSpec* ui_api, const std::string& file,
                   int32_t line, const ApiSpec* second = nullptr) {
    std::vector<OpNode> ops;
    ops.push_back(Op(ui_api, file, line));
    if (second != nullptr) {
      ops.push_back(Op(second, file, line + 12));
    }
    app->actions.push_back(Act(action, 2.0, {Ev("onClick", file, line - 8, std::move(ops))}));
  }
};

}  // namespace

void BuildMotivationApps(CatalogState* state) {
  const StandardApis& api = state->apis;
  droidsim::ApiRegistry* reg = &state->registry;

  // A heavy UI op used by the apps whose Table 2 row has 500 ms false positives.
  ApiSpec heavy_ui_spec;
  heavy_ui_spec.name = "layoutHeavy";
  heavy_ui_spec.clazz = "android.view.ViewRootImpl";
  heavy_ui_spec.kind = ApiKind::kUi;
  heavy_ui_spec.cost.cpu_mean = Milliseconds(340);
  heavy_ui_spec.cost.cpu_sigma = 0.30;
  heavy_ui_spec.cost.uarch = droidsim::UiUarch();
  heavy_ui_spec.cost.alloc_bytes_mean = 700 * 1024;
  heavy_ui_spec.cost.syscalls_per_ms = 0.25;
  heavy_ui_spec.cost.frames = 28;
  heavy_ui_spec.cost.frame_cpu_mean = Milliseconds(8);
  const ApiSpec* heavy_ui = reg->Register(std::move(heavy_ui_spec));

  // ----------------------------- DroidWall -----------------------------
  {
    MotivationBuilder b{state, state->NewApp("DroidWall", "com.googlecode.droidwall",
                                             "Tools", "3e2b654", 50000)};
    const ApiSpec* rules = KnownIo(reg, "com.googlecode.droidwall.RulesDao", "loadRules",
                                   DeviceKind::kDatabase, 16, 64, 25, 128);
    b.AddBugAction("ApplyRules", rules, "Api.java", 212, 0.6, api.ui_set_text);
    b.AddUiAction("ShowLog", heavy_ui, "LogActivity.java", 44);
    b.AddUiAction("OpenAppList", api.ui_list_layout, "MainActivity.java", 81,
                  api.ui_notify_changed);
    b.AddUiAction("OpenPrefs", api.ui_inflate, "PrefsActivity.java", 30, api.ui_measure);
  }

  // ----------------------------- FrostWire -----------------------------
  {
    MotivationBuilder b{state, state->NewApp("FrostWire", "com.frostwire.android",
                                             "Media & Video", "55427ef", 1000000)};
    const ApiSpec* scan = KnownCompute(reg, "com.frostwire.android.LibraryScanner", "scan",
                                       620, 0.18, 1500);
    b.AddBugAction("ScanLibrary", scan, "LibraryScanner.java", 140, 0.55, nullptr);
    b.AddUiAction("BrowseFiles", api.ui_list_layout, "BrowseFragment.java", 52,
                  api.ui_recycler_bind);
    b.AddUiAction("OpenPlayer", api.ui_inflate, "PlayerActivity.java", 39, api.ui_draw);
    b.AddUiAction("OpenSearch", api.ui_inflate, "SearchFragment.java", 47, api.ui_draw);
    b.AddUiAction("ShowTransfers", api.ui_list_layout, "TransfersFragment.java", 58,
                  api.ui_notify_changed);
    b.AddUiAction("OpenMenu", api.ui_inflate, "MainMenu.java", 25, api.ui_request_layout);
  }

  // ----------------------------- Ushahidi -----------------------------
  {
    MotivationBuilder b{state, state->NewApp("Ushahidi", "com.ushahidi.android", "Social",
                                             "59fbb533d0", 100000)};
    const ApiSpec* reports = KnownIo(reg, "com.ushahidi.android.ReportDao", "fetchReports",
                                     DeviceKind::kDatabase, 18, 128, 40, 256);
    const ApiSpec* photo = KnownCompute(reg, "com.ushahidi.android.PhotoAttach", "decode", 240,
                                        0.2, 2600);
    b.AddBugAction("LoadReports", reports, "ReportDao.java", 97, 0.55, api.ui_set_text);
    b.AddBugAction("AttachPhoto", photo, "PhotoAttach.java", 61, 0.5, nullptr);
    b.AddUiAction("ShowMap", heavy_ui, "MapFragment.java", 70);
    b.AddUiAction("OpenReportList", api.ui_list_layout, "ReportList.java", 45,
                  api.ui_notify_changed);
    b.AddUiAction("OpenCategories", api.ui_inflate, "CategoryActivity.java", 38);
    b.AddUiAction("OpenCheckins", api.ui_list_layout, "CheckinActivity.java", 52,
                  api.ui_recycler_bind);
  }

  // ----------------------------- SeaDroid -----------------------------
  {
    MotivationBuilder b{state, state->NewApp("SeaDroid", "com.seafile.seadroid2",
                                             "Productivity", "5a7531d", 100000)};
    ApiSpec sync;
    sync.name = "readLibrary";
    sync.clazz = "com.seafile.seadroid2.SeafileSync";
    sync.kind = ApiKind::kFileIo;
    sync.known_blocking = true;
    sync.cost.device = DeviceKind::kFlash;
    sync.cost.io_rounds = 24;
    sync.cost.io_bytes_mean = 2048 * 1024;
    sync.cost.cpu_mean = Milliseconds(950);
    sync.cost.cpu_sigma = 0.18;
    sync.cost.uarch = droidsim::ParserUarch();
    sync.cost.alloc_bytes_mean = 2200 * 1024;
    sync.cost.syscalls_per_ms = 0.5;
    const ApiSpec* sync_api = reg->Register(std::move(sync));
    b.AddBugAction("SyncLibrary", sync_api, "SeafileSync.java", 178, 0.55, nullptr);
    b.AddUiAction("BrowseLibrary", heavy_ui, "LibraryFragment.java", 63);
    b.AddUiAction("ShowGallery", heavy_ui, "GalleryActivity.java", 51);
    b.AddUiAction("OpenFileList", api.ui_list_layout, "FileFragment.java", 44,
                  api.ui_recycler_bind);
    b.AddUiAction("OpenAccounts", api.ui_inflate, "AccountsActivity.java", 36);
    b.AddUiAction("ShowDetail", api.ui_inflate, "DetailActivity.java", 42, api.ui_measure);
    b.AddUiAction("OpenMenu", api.ui_notify_changed, "MainMenu.java", 28, api.ui_request_layout);
  }

  // ----------------------------- WebSMS -----------------------------
  {
    MotivationBuilder b{state, state->NewApp("WebSMS", "de.ub0r.android.websms",
                                             "Communication", "1f596fbd29", 500000)};
    const ApiSpec* store = KnownIo(reg, "de.ub0r.android.websms.SmsStore", "query",
                                   DeviceKind::kDatabase, 17, 96, 30, 200);
    b.AddBugAction("LoadThread", store, "SmsStore.java", 120, 0.55, api.ui_set_text);
    b.AddUiAction("OpenComposer", api.ui_inflate, "ComposeActivity.java", 40, api.ui_measure);
    b.AddUiAction("ShowConversations", api.ui_list_layout, "ConversationList.java", 55,
                  api.ui_notify_changed);
    b.AddUiAction("OpenConnectors", api.ui_inflate, "ConnectorActivity.java", 33);
  }

  // ----------------------------- cgeo -----------------------------
  {
    MotivationBuilder b{state,
                        state->NewApp("cgeo", "cgeo.geocaching", "Travel & Local",
                                      "6e4a8d4ba8", 1000000)};
    const ApiSpec* cache_q = KnownIo(reg, "cgeo.geocaching.DataStore", "loadCaches",
                                     DeviceKind::kDatabase, 15, 128, 35, 220);
    const ApiSpec* waypoints = KnownIo(reg, "cgeo.geocaching.DataStore", "loadWaypoints",
                                       DeviceKind::kDatabase, 13, 64, 30, 180);
    const ApiSpec* gpx = KnownIo(reg, "cgeo.geocaching.files.GPXImporter", "importGpx",
                                 DeviceKind::kFlash, 20, 700, 50, 420);
    const ApiSpec* logimg = KnownCompute(reg, "cgeo.geocaching.LogImageLoader", "decodeLogs",
                                         230, 0.2, 2400);
    const ApiSpec* detail = KnownCompute(reg, "cgeo.geocaching.CacheDetailParser", "parse",
                                         210, 0.2, 1800);
    b.AddBugAction("LiveMap", cache_q, "DataStore.java", 301, 0.55, api.ui_draw);
    b.AddBugAction("OpenWaypoints", waypoints, "DataStore.java", 344, 0.5, nullptr);
    b.AddBugAction("ImportGpx", gpx, "GPXImporter.java", 93, 0.55, nullptr);
    b.AddBugAction("ShowLogImages", logimg, "LogImageLoader.java", 77, 0.5, nullptr);
    b.AddBugAction("OpenCacheDetail", detail, "CacheDetailParser.java", 160, 0.5,
                   api.ui_set_text);
    b.AddUiAction("ShowMap", heavy_ui, "CGeoMap.java", 210);
    b.AddUiAction("RenderCompass", heavy_ui, "CompassActivity.java", 66);
    b.AddUiAction("OpenCacheList", api.ui_list_layout, "CacheListActivity.java", 71,
                  api.ui_recycler_bind);
    b.AddUiAction("OpenFilters", api.ui_inflate, "FilterActivity.java", 35);
    b.AddUiAction("OpenSettings", api.ui_inflate, "SettingsActivity.java", 29, api.ui_measure);
  }

  // ----------------------------- FBReaderJ -----------------------------
  {
    MotivationBuilder b{state, state->NewApp("FBReaderJ", "org.geometerplus.fbreader",
                                             "Books", "0f02d4e923", 1000000)};
    const ApiSpec* epub = KnownCompute(reg, "org.geometerplus.fbreader.formats.EpubParser",
                                       "parse", 250, 0.2, 2200);
    const ApiSpec* css = KnownCompute(reg, "org.geometerplus.fbreader.formats.CssApplier",
                                      "apply", 160, 0.2, 900);
    const ApiSpec* toc = KnownCompute(reg, "org.geometerplus.fbreader.bookmodel.TocBuilder",
                                      "build", 180, 0.2, 1100);
    const ApiSpec* hyphen = KnownIo(reg, "org.geometerplus.zlibrary.HyphenationLoader",
                                    "load", DeviceKind::kFlash, 18, 400, 40, 500);
    const ApiSpec* cover = KnownCompute(reg, "org.geometerplus.fbreader.CoverDecoder",
                                        "decode", 220, 0.2, 2800);
    const ApiSpec* pos = KnownIo(reg, "org.geometerplus.fbreader.book.PositionStore", "save",
                                 DeviceKind::kDatabase, 14, 32, 20, 96);
    b.AddBugAction("OpenBook", epub, "EpubParser.java", 133, 0.5, nullptr);
    b.AddBugAction("ApplyTheme", css, "CssApplier.java", 58, 0.5, nullptr);
    b.AddBugAction("ShowToc", toc, "TocBuilder.java", 47, 0.5, api.ui_list_layout);
    b.AddBugAction("LoadHyphenation", hyphen, "HyphenationLoader.java", 82, 0.5, nullptr);
    b.AddBugAction("ShowLibrary", cover, "CoverDecoder.java", 64, 0.5, nullptr);
    b.AddBugAction("TurnPage", pos, "PositionStore.java", 39, 0.45, nullptr);
    b.AddUiAction("RenderPage", heavy_ui, "ZLTextView.java", 420);
    b.AddUiAction("OpenMenuPanel", heavy_ui, "MenuPanel.java", 51);
    b.AddUiAction("OpenBookmarks", api.ui_list_layout, "BookmarksActivity.java", 46,
                  api.ui_notify_changed);
    b.AddUiAction("OpenSearchPanel", api.ui_inflate, "SearchPanel.java", 30);
  }

  // ----------------------------- A Better Camera -----------------------------
  {
    MotivationBuilder b{state, state->NewApp("A Better Camera", "com.almalence.opencam",
                                             "Photography", "9f8e3b0", 1000000)};
    droidsim::AppSpec* app = b.app;
    // The Figure 1 action: the buggy Resume of the main activity.
    app->actions.push_back(Act(
        "ResumeMain", 2.0,
        {Ev("onResume", "MainScreen.java", 480,
            {Bug(api.camera_set_parameters, "MainScreen.java", 492, 0.5),
             Bug(api.camera_open, "MainScreen.java", 497, 0.6),
             Op(api.ui_set_text, "MainScreen.java", 505),
             Op(api.ui_inflate, "MainScreen.java", 512),
             Op(api.ui_seekbar_init, "MainScreen.java", 519),
             Op(api.ui_orientation_enable, "MainScreen.java", 526)})}));
    for (const char* name : {"setParameters", "open"}) {
      BugSpec bug;
      bug.app_name = app->name;
      bug.issue_id = "motivation";
      bug.api = std::string("android.hardware.Camera.") + name;
      bug.file = "MainScreen.java";
      bug.line = name == std::string("open") ? 497 : 492;
      bug.known_blocking = true;
      state->motivation_bugs.push_back(std::move(bug));
    }
    b.AddUiAction("OpenModes", api.ui_inflate, "ModeSelector.java", 44, api.ui_animate);
    b.AddUiAction("ShowGallery", api.ui_gallery_bind, "GalleryView.java", 58);
    b.AddUiAction("OpenSettingsPanel", api.ui_inflate, "SettingsPanel.java", 37,
                  api.ui_measure);
    b.AddUiAction("ToggleHdrPanel", api.ui_request_layout, "HdrPanel.java", 29,
                  api.ui_set_text);
  }

  for (const auto& app : state->owned_apps) {
    bool is_motivation = app->name == "DroidWall" || app->name == "FrostWire" ||
                         app->name == "Ushahidi" || app->name == "SeaDroid" ||
                         app->name == "WebSMS" || app->name == "cgeo" ||
                         app->name == "FBReaderJ" || app->name == "A Better Camera";
    if (is_motivation) {
      state->motivation.push_back(app.get());
    }
  }
}

}  // namespace workload
