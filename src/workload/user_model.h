// User models: drive an app's actions over simulated time. The stochastic session mimics the
// paper's in-the-wild testers (weighted action choice, exponential think times); the scripted
// session replays an exact action sequence for the trace-style figures (6 and 7).
#ifndef SRC_WORKLOAD_USER_MODEL_H_
#define SRC_WORKLOAD_USER_MODEL_H_

#include <optional>
#include <vector>

#include "src/droidsim/app.h"
#include "src/droidsim/phone.h"
#include "src/simkit/rng.h"

namespace workload {

struct UserSessionConfig {
  // Mean think time between actions; a floor keeps actions from overlapping unrealistically.
  simkit::SimDuration mean_think = simkit::Milliseconds(1500);
  simkit::SimDuration min_think = simkit::Milliseconds(400);
  // Stop issuing actions after this many (0 = unlimited, until the session is destroyed).
  int64_t max_actions = 0;
};

class UserSession {
 public:
  // Stochastic session: actions chosen by ActionSpec weight.
  UserSession(droidsim::Phone* phone, droidsim::App* app, simkit::Rng rng,
              UserSessionConfig config = {});
  // Scripted session: replays `script` (action uids) in order, think time between each.
  UserSession(droidsim::Phone* phone, droidsim::App* app, std::vector<int32_t> script,
              UserSessionConfig config = {});
  ~UserSession();
  UserSession(const UserSession&) = delete;
  UserSession& operator=(const UserSession&) = delete;

  int64_t actions_performed() const { return performed_; }

 private:
  void ScheduleNext(simkit::SimDuration delay);
  void PerformNext();
  int32_t ChooseAction();

  droidsim::Phone* phone_;
  droidsim::App* app_;
  simkit::Rng rng_;
  UserSessionConfig config_;
  std::optional<std::vector<int32_t>> script_;
  size_t script_pos_ = 0;
  int64_t performed_ = 0;
  simkit::EventId pending_ = 0;
};

}  // namespace workload

#endif  // SRC_WORKLOAD_USER_MODEL_H_
