#include "src/workload/user_model.h"

#include <algorithm>
#include <utility>

namespace workload {

UserSession::UserSession(droidsim::Phone* phone, droidsim::App* app, simkit::Rng rng,
                         UserSessionConfig config)
    : phone_(phone), app_(app), rng_(rng), config_(config) {
  ScheduleNext(config_.min_think);
}

UserSession::UserSession(droidsim::Phone* phone, droidsim::App* app,
                         std::vector<int32_t> script, UserSessionConfig config)
    : phone_(phone),
      app_(app),
      rng_(1, 1),
      config_(config),
      script_(std::move(script)) {
  ScheduleNext(config_.min_think);
}

UserSession::~UserSession() {
  if (pending_ != 0) {
    phone_->sim().Cancel(pending_);
  }
}

void UserSession::ScheduleNext(simkit::SimDuration delay) {
  pending_ = phone_->sim().ScheduleAfter(delay, [this]() {
    pending_ = 0;
    PerformNext();
  });
}

int32_t UserSession::ChooseAction() {
  double total = 0.0;
  for (const droidsim::ActionSpec& action : app_->spec().actions) {
    total += action.weight;
  }
  double pick = rng_.Uniform(0.0, total);
  for (int32_t uid = 0; uid < app_->num_actions(); ++uid) {
    pick -= app_->action(uid).weight;
    if (pick <= 0.0) {
      return uid;
    }
  }
  return app_->num_actions() - 1;
}

void UserSession::PerformNext() {
  if (script_.has_value()) {
    if (script_pos_ >= script_->size()) {
      return;
    }
    app_->PerformAction((*script_)[script_pos_++]);
  } else {
    if (config_.max_actions > 0 && performed_ >= config_.max_actions) {
      return;
    }
    app_->PerformAction(ChooseAction());
  }
  ++performed_;
  simkit::SimDuration think = static_cast<simkit::SimDuration>(
      rng_.Exponential(static_cast<double>(config_.mean_think)));
  ScheduleNext(std::max(think, config_.min_think));
}

}  // namespace workload
