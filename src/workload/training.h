// Training-sample collection for the Section 3.3.1 correlation analysis. Builds a synthetic
// training app whose actions exercise the paper's training set — 10 well-known soft hang bugs
// and 11 UI-APIs — executes each action repeatedly on a device profile, and records one
// labeled sample per observed soft hang: all 24 performance events, both as main−render
// differences (Table 3(a)) and main-thread-only readings (Table 3(b)).
#ifndef SRC_WORKLOAD_TRAINING_H_
#define SRC_WORKLOAD_TRAINING_H_

#include <vector>

#include "src/droidsim/device.h"
#include "src/hangdoctor/correlation.h"
#include "src/workload/catalog.h"

namespace workload {

struct TrainingConfig {
  int32_t executions_per_op = 12;
  uint64_t seed = 99;
  droidsim::DeviceProfile profile = droidsim::LgV10();
};

struct TrainingData {
  std::vector<hangdoctor::LabeledSample> diff_samples;       // main − render
  std::vector<hangdoctor::LabeledSample> main_only_samples;  // main thread only
};

TrainingData CollectTrainingSamples(const Catalog& catalog, const TrainingConfig& config);

// Validation-set samples: one labeled sample per soft hang of the previously *unknown* study
// bugs (paper Section 4.4 / Table 6 use these). Each sample's `source` is the bug's api name.
TrainingData CollectValidationSamples(const Catalog& catalog, const TrainingConfig& config);

}  // namespace workload

#endif  // SRC_WORKLOAD_TRAINING_H_
