// The distributed fleet driver: RunFleet's evaluation shape spread across a
// coordinator/worker shard group (src/fleetd). Phase A records every job's HDSL session log
// (the same passive tap RunFleet's record_path uses); phase B boots N in-process worker
// daemons (each an embedded NetServer + DetectorService behind one end of a socketpair),
// links a fleetd::Coordinator to them, and streams the recorded sessions through the wire —
// with optional mid-run drain-migration, worker crashes, and heartbeat loss injected at
// deterministic frame fractions (src/faultsim/fleet_faults.h).
//
// Determinism contract, extending fleet.h's one more level out: the folded outcomes and the
// merged Hang Bug Report are bit-identical to the in-process RunFleet oracle on the same
// jobs — at any worker count, with or without a mid-run migration, a worker crash, or a
// fenced heartbeat-silent worker, because every move is an HDSL replay of a per-session-pure
// prefix and each session contributes exactly one result (coordinator.h).
#ifndef SRC_WORKLOAD_DISTRIBUTED_FLEET_H_
#define SRC_WORKLOAD_DISTRIBUTED_FLEET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/faultsim/fleet_faults.h"
#include "src/fleetd/coordinator.h"
#include "src/hosts/mux_log.h"
#include "src/netd/server.h"
#include "src/workload/fleet.h"

namespace workload {

struct DistributedFleetOptions {
  // Worker daemons in the shard group (>= 1).
  int32_t workers = 2;
  // Per-worker daemon shape (NetServer knobs).
  int32_t server_workers = 1;
  int32_t rings = 2;
  // Drain-migrate the busiest live worker's sessions onto the next live worker once this
  // fraction of all frames has been routed. < 0 disables; ignored with a single worker.
  double migrate_at = -1.0;
  // Seeded worker-crash / heartbeat-loss events (fleet_faults.h).
  faultsim::FleetFaultProfile fleet_faults;
  uint64_t fault_seed = 0;
  // Seed blocking-API database for every worker's DetectorService — must match the database
  // the recorded jobs ran with (fleet.h known_db) for the bit-identity contract. Must
  // outlive the run. RunDistributedFleet wires this from the jobs automatically.
  const hangdoctor::BlockingApiDatabase* known_db = nullptr;
  // Liveness clock: every `pulse_every_frames` routed frames the driver checks the real
  // elapsed time and, if at least `pulse_step_ms` real milliseconds have passed since the
  // last pulse, pulses the coordinator with it. Leases live `lease_timeout_ms` real ms —
  // the window a worker has to ack a heartbeat before it is fenced. Heartbeat acks ride
  // the same stream as session replies, so the timeout must dominate the worker's worst
  // backpressure stall (a parked applier queue delays acks), not just the network round
  // trip; frame-count-coupled virtual time would fence a healthy-but-busy worker.
  int64_t lease_timeout_ms = 2000;
  int64_t pulse_every_frames = 64;
  int64_t pulse_step_ms = 50;
  int64_t result_timeout_ms = 120000;
};

struct DistributedFleetResult {
  // Every session, ascending id. Clean runs abort nothing.
  std::vector<netd::NetSessionOutcome> outcomes;
  // MergeSessionReports over the clean outcomes — compare against the oracle's merged
  // report for the bit-identity check.
  hangdoctor::HangBugReport merged;
  fleetd::CoordinatorStats stats;
  // Human-readable lines for everything injected ("worker 1 crash at 42% of frames",
  // "drain-migrated worker 0 -> 1 at 50% of frames").
  std::vector<std::string> events;
  int64_t frames_routed = 0;
};

// Streams pre-recorded session logs through the shard group. `slices` ids must be unique;
// ownership ranges partition [min id, max id].
DistributedFleetResult RunDistributedFleetFromLogs(
    std::span<const hangdoctor::SessionLogSlice> slices,
    const DistributedFleetOptions& options);

// Records `jobs` into `record_dir` (file job_<i>.hdsl, session id i + 1) via the per-job
// RunFleet path, then streams the logs. The recording summary — the natural oracle — comes
// back through `oracle` when non-null.
DistributedFleetResult RunDistributedFleet(std::span<const FleetJob> jobs,
                                           const std::string& record_dir,
                                           const DistributedFleetOptions& options,
                                           FleetSummary* oracle = nullptr);

}  // namespace workload

#endif  // SRC_WORKLOAD_DISTRIBUTED_FLEET_H_
