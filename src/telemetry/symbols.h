// Per-session symbol interning. Every frame a monitored app can ever put on a stack is
// interned once into a SymbolTable that maps it to a dense u32 FrameId. The hot paths
// (executor stack push, 20 ms stack sampling, occurrence counting in the Trace Analyzer)
// then move integers around; strings are materialized only when a diagnosis or report is
// rendered.
//
// The table is substrate-neutral: the droidsim host derives a spec-walking subclass that
// knows how to index AppSpecs, and the session-log replay host rebuilds a table verbatim
// from the recorded frame list. Whether a frame is a UI-class API is a *host* judgement
// (Android framework knowledge), so it is supplied at intern time and stored as a dense bit
// the core's classifier reads without touching strings.
#ifndef SRC_TELEMETRY_SYMBOLS_H_
#define SRC_TELEMETRY_SYMBOLS_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/telemetry/stack.h"

namespace telemetry {

class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;
  virtual ~SymbolTable() = default;

  // Interns `frame`, deduplicating on (function, clazz, file, line) — the same identity the
  // Trace Analyzer's census keys on. Returns the existing id for a known frame (in which
  // case the classification bits must match the original interning and are ignored).
  // `is_self_developed` marks the app's own functions (vs platform/library APIs) — like
  // `is_ui` a host provenance judgement, needed by the waiting-chain diagnosis where the
  // caller-census signal that normally identifies self-developed work cannot fire.
  FrameId Intern(StackFrame frame, bool is_ui, bool is_self_developed = false);

  const StackFrame& Frame(FrameId id) const { return frames_[id]; }
  // Precomputed UI-class bit, so classification never touches strings.
  bool IsUi(FrameId id) const { return is_ui_[id] != 0; }
  // Precomputed app-code provenance bit (see Intern).
  bool IsSelfDeveloped(FrameId id) const { return is_self_[id] != 0; }
  size_t size() const { return frames_.size(); }

  // Incremental content hash over every interned frame (strings, line, closed-library and
  // UI bits), folded at Intern time — O(1) to query. Two tables with equal (size,
  // content_hash) resolve every FrameId to identical content, which lets the knowledge
  // base's diagnosis memos use the pair as the symbol half of an Analyze input signature
  // without rehashing any symbols per diagnosis.
  uint64_t content_hash() const { return content_hash_; }

  // True when any frame of `trace` matches (clazz, function) — the symbolic containment
  // query tests and walkthroughs use.
  bool TraceContains(const StackTrace& trace, std::string_view clazz,
                     std::string_view function) const {
    for (FrameId id : trace.frames) {
      const StackFrame& frame = frames_[id];
      if (frame.clazz == clazz && frame.function == function) {
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<StackFrame> frames_;           // indexed by FrameId
  std::vector<uint8_t> is_ui_;               // indexed by FrameId
  std::vector<uint8_t> is_self_;             // indexed by FrameId
  std::unordered_map<std::string, FrameId> by_key_;  // content dedup
  uint64_t content_hash_ = 0xcbf29ce484222325ULL;    // FNV-1a offset basis
};

}  // namespace telemetry

#endif  // SRC_TELEMETRY_SYMBOLS_H_
