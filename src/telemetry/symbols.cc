#include "src/telemetry/symbols.h"

#include <utility>

namespace telemetry {

namespace {

// Dedup key over the census identity (function, clazz, file, line). '\0' separators keep
// distinct tuples from colliding.
std::string FrameKey(const StackFrame& frame) {
  std::string key;
  key.reserve(frame.function.size() + frame.clazz.size() + frame.file.size() + 14);
  key.append(frame.function);
  key.push_back('\0');
  key.append(frame.clazz);
  key.push_back('\0');
  key.append(frame.file);
  key.push_back('\0');
  key.append(std::to_string(frame.line));
  return key;
}

}  // namespace

FrameId SymbolTable::Intern(StackFrame frame, bool is_ui) {
  std::string key = FrameKey(frame);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    return it->second;
  }
  auto id = static_cast<FrameId>(frames_.size());
  is_ui_.push_back(is_ui ? 1 : 0);
  frames_.push_back(std::move(frame));
  by_key_.emplace(std::move(key), id);
  return id;
}

}  // namespace telemetry
