#include "src/telemetry/symbols.h"

#include <cstring>
#include <string_view>
#include <utility>

namespace telemetry {

namespace {

// Word-at-a-time FNV-1a fold for the incremental content hash: one xor-multiply per 8-byte
// chunk. Not the canonical byte stream — fine: nothing stored pins these values, they only
// give two content-identical tables the same fingerprint.
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FoldBytes(uint64_t hash, const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, bytes, 8);
    hash = (hash ^ word) * kFnvPrime;
    bytes += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    hash = (hash ^ bytes[i]) * kFnvPrime;
  }
  return hash;
}

uint64_t FoldString(uint64_t hash, std::string_view s) {
  // Length prefix keeps concatenated fields injective ("a","bc" vs "ab","c").
  uint64_t size = s.size();
  hash = FoldBytes(hash, &size, sizeof(size));
  return FoldBytes(hash, s.data(), s.size());
}

// Dedup key over the census identity (function, clazz, file, line). '\0' separators keep
// distinct tuples from colliding.
std::string FrameKey(const StackFrame& frame) {
  std::string key;
  key.reserve(frame.function.size() + frame.clazz.size() + frame.file.size() + 14);
  key.append(frame.function);
  key.push_back('\0');
  key.append(frame.clazz);
  key.push_back('\0');
  key.append(frame.file);
  key.push_back('\0');
  key.append(std::to_string(frame.line));
  return key;
}

}  // namespace

FrameId SymbolTable::Intern(StackFrame frame, bool is_ui, bool is_self_developed) {
  std::string key = FrameKey(frame);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    return it->second;
  }
  auto id = static_cast<FrameId>(frames_.size());
  is_ui_.push_back(is_ui ? 1 : 0);
  is_self_.push_back(is_self_developed ? 1 : 0);
  frames_.push_back(std::move(frame));
  by_key_.emplace(std::move(key), id);
  const StackFrame& stored = frames_.back();
  uint64_t hash = content_hash_;
  hash = FoldString(hash, stored.function);
  hash = FoldString(hash, stored.clazz);
  hash = FoldString(hash, stored.file);
  uint64_t line_flags = static_cast<uint64_t>(static_cast<uint32_t>(stored.line)) |
                        (uint64_t{stored.in_closed_library ? 1u : 0u} << 32) |
                        (uint64_t{is_ui ? 1u : 0u} << 33) |
                        (uint64_t{is_self_developed ? 1u : 0u} << 34);
  content_hash_ = FoldBytes(hash, &line_flags, sizeof(line_flags));
  return id;
}

}  // namespace telemetry
