#include "src/telemetry/counters.h"

#include <unordered_map>

#include "src/simkit/string_hash.h"

namespace telemetry {

bool IsSoftwareEvent(PerfEventType event) {
  switch (event) {
    case PerfEventType::kContextSwitches:
    case PerfEventType::kCpuMigrations:
    case PerfEventType::kPageFaults:
    case PerfEventType::kMinorFaults:
    case PerfEventType::kMajorFaults:
    case PerfEventType::kTaskClock:
    case PerfEventType::kCpuClock:
    case PerfEventType::kAlignmentFaults:
    case PerfEventType::kEmulationFaults:
      return true;
    default:
      return false;
  }
}

namespace {
const std::array<std::string, kNumPerfEvents> kNames = {
    "context-switches",
    "cpu-migrations",
    "page-faults",
    "minor-faults",
    "major-faults",
    "task-clock",
    "cpu-clock",
    "alignment-faults",
    "emulation-faults",
    "cpu-cycles",
    "instructions",
    "cache-references",
    "cache-misses",
    "branch-loads",
    "branch-misses",
    "bus-cycles",
    "stalled-cycles-frontend",
    "stalled-cycles-backend",
    "L1-dcache-loads",
    "L1-dcache-stores",
    "raw-l1-dcache-refill",
    "raw-l1-icache-refill",
    "raw-l1-itlb-refill",
    "raw-l1-dtlb-refill",
};
}  // namespace

const std::string& PerfEventName(PerfEventType event) {
  return kNames.at(static_cast<size_t>(event));
}

std::optional<PerfEventType> PerfEventFromName(std::string_view name) {
  static const std::unordered_map<std::string, PerfEventType, simkit::StringHash,
                                  std::equal_to<>>
      kByName = [] {
    std::unordered_map<std::string, PerfEventType, simkit::StringHash, std::equal_to<>> map;
    for (size_t i = 0; i < kNumPerfEvents; ++i) {
      map.emplace(kNames[i], static_cast<PerfEventType>(i));
    }
    return map;
  }();
  auto it = kByName.find(name);
  if (it == kByName.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::array<PerfEventType, kNumPerfEvents>& AllPerfEvents() {
  static const std::array<PerfEventType, kNumPerfEvents> kAll = [] {
    std::array<PerfEventType, kNumPerfEvents> all{};
    for (size_t i = 0; i < kNumPerfEvents; ++i) {
      all[i] = static_cast<PerfEventType>(i);
    }
    return all;
  }();
  return kAll;
}

}  // namespace telemetry
