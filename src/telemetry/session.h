// The session vocabulary for multiplexed telemetry: when one detector process serves many
// live sessions (the DetectorService in src/hangdoctor/detector_service.h, the HDSL v3
// multiplexed logs in src/hosts/mux_log.h), every record that crosses the Telemetry Host SPI
// gains a SessionId tag naming the session it belongs to.
//
// Determinism contract: a SessionId is assigned by the client (the fleet runner uses the job
// index; a real ingestion frontend would use a device/session key) and everything derived
// from it is a pure function of the id — ShardOf() hashes the id with a fixed mixer, so the
// same session lands on the same shard at any shard count, and merged results are folded in
// ascending-id order regardless of which shard or worker finished first.
#ifndef SRC_TELEMETRY_SESSION_H_
#define SRC_TELEMETRY_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace telemetry {

// Identifies one telemetry session (one app run on one device) within an interleaved
// multi-session stream. A strong type so a session id can never be confused with an
// execution id or a device id in an SPI signature.
struct SessionId {
  uint64_t value = 0;

  friend bool operator==(SessionId a, SessionId b) { return a.value == b.value; }
  friend bool operator!=(SessionId a, SessionId b) { return a.value != b.value; }
  friend bool operator<(SessionId a, SessionId b) { return a.value < b.value; }
};

// splitmix64 finalizer: a fixed, platform-independent mixer so shard assignment is identical
// on every host (std::hash is not specified and must not leak into results).
inline uint64_t SessionHash(SessionId id) {
  uint64_t x = id.value + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Deterministic shard assignment: shard = hash(session_id) % shards. Every record of a
// session routes to the same shard; different sessions spread uniformly.
inline size_t ShardOf(SessionId id, size_t shards) {
  return shards <= 1 ? 0 : static_cast<size_t>(SessionHash(id) % shards);
}

struct SessionIdHasher {
  size_t operator()(SessionId id) const { return static_cast<size_t>(SessionHash(id)); }
};

// One element of an interleaved multi-session stream: a record stamped with its session.
// The concrete Record is layer-specific (the detector service instantiates it with its SPI
// payload union); this template is the substrate-free vocabulary for "a tagged record".
template <typename Record>
struct SessionStamped {
  SessionId session;
  Record record;
};

}  // namespace telemetry

#endif  // SRC_TELEMETRY_SESSION_H_
