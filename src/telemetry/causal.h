// Cross-thread causal vocabulary (DESIGN.md section 3.8). When an app offloads work — a task
// posted to a HandlerThread, a callable submitted to an executor — and the main thread later
// blocks on the result, the hang's *symptom* (a Future.get frame on the main stack) and its
// *cause* (whatever the async thread is doing) live on different threads. The telemetry layer
// names the pieces the diagnoser needs to connect them:
//
//  - ThreadId tags every sampled stack with the thread it came from. 0 is always the main
//    (UI) thread, so every pre-async producer — which only ever sampled main — is already
//    correct by default. Async threads are numbered 1..N in app-construction order.
//  - CausalEdgeId names one post-site -> run-site -> wait-site chain. The host allocates ids
//    from a per-session counter, so the same app and seed yield the same edges in every run
//    and under any fleet sharding (the same determinism contract as FrameId interning).
//
// Like FrameId, these are plain integers: the SPI stays value-shaped and substrate-free.
#ifndef SRC_TELEMETRY_CAUSAL_H_
#define SRC_TELEMETRY_CAUSAL_H_

#include <cstdint>

namespace telemetry {

// Which thread a stack sample was taken on. 0 = the main (UI) thread.
using ThreadId = uint32_t;

inline constexpr ThreadId kMainThread = 0;

// Names one asynchronous execution: allocated at the post site, carried through the run
// site on the async thread, and resolved at the wait site when the main thread blocks on
// the result. 0 is reserved for "no edge".
struct CausalEdgeId {
  uint64_t value = 0;

  bool valid() const { return value != 0; }
  bool operator==(const CausalEdgeId& other) const { return value == other.value; }
  bool operator!=(const CausalEdgeId& other) const { return value != other.value; }
};

}  // namespace telemetry

#endif  // SRC_TELEMETRY_CAUSAL_H_
