// Stack traces as the detector core's Diagnoser sees them: one frame per active call,
// innermost last. On the hot sampling path a frame is a 32-bit FrameId interned in a
// SymbolTable (symbols.h); the symbolic StackFrame — API name, class, call-site file/line —
// is materialized only at report-render time. Frames inside closed-source third-party
// libraries carry a flag so offline-scanner baselines can be made realistically blind to
// them while the runtime trace collector still sees the symbols (on a real phone they come
// from the unwinder; symbol names survive even without source access).
//
// These types are the Telemetry Host SPI's trace currency: hosts (the droidsim adapter, the
// session-log replayer, future /proc-style collectors) produce them, the core consumes them.
#ifndef SRC_TELEMETRY_STACK_H_
#define SRC_TELEMETRY_STACK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/telemetry/causal.h"

namespace telemetry {

// Index into a SymbolTable. Hosts must assign ids deterministically (the droidsim host
// interns by a canonical spec walk at App construction), so the same app yields the same ids
// in every run and under any fleet sharding.
using FrameId = uint32_t;

// A materialized (symbolic) frame: what reports and diagnoses show.
struct StackFrame {
  std::string function;  // e.g. "clean"
  std::string clazz;     // e.g. "org.htmlcleaner.HtmlCleaner"
  std::string file;      // e.g. "HtmlSanitizer.java"
  int32_t line = 0;
  bool in_closed_library = false;

  bool operator==(const StackFrame& other) const {
    return function == other.function && clazz == other.clazz && file == other.file &&
           line == other.line;
  }
};

// A sampled stack: interned frame ids, outermost first. Resolving an id back to its
// StackFrame requires the session's SymbolTable (see SymbolTable::Frame). `thread` says
// which thread the sample was taken on (causal.h); 0 — the main thread — is the default, so
// every producer that predates cross-thread sampling is already tagged correctly.
struct StackTrace {
  int64_t timestamp_ns = 0;
  ThreadId thread = kMainThread;
  std::vector<FrameId> frames;  // outermost first

  bool Contains(FrameId id) const {
    for (FrameId frame : frames) {
      if (frame == id) {
        return true;
      }
    }
    return false;
  }
};

// Renders "function(File.java:123)" like an Android stack dump line.
inline std::string FormatFrame(const StackFrame& frame) {
  return frame.function + "(" + frame.file + ":" + std::to_string(frame.line) + ")";
}

}  // namespace telemetry

#endif  // SRC_TELEMETRY_STACK_H_
