// Fault-injection and graceful-degradation tests (src/faultsim + the DetectorCore
// degradation policy). Covers: every named fault profile across all study apps, bit-identity
// of no-fault plans with plan-less runs, determinism of degraded fleets at any worker count,
// bit-identical record/replay of faulty sessions, the degraded flag on reports produced
// without counters, torn-log surfacing, the session-log writer's sticky failure state, and
// DetectorCore's construction-time SessionInfo validation.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/faultsim/fault_plan.h"
#include "src/hangdoctor/detector_core.h"
#include "src/hangdoctor/stream_guard.h"
#include "src/hosts/hang_doctor.h"
#include "src/hosts/replay_host.h"
#include "src/hosts/session_log.h"
#include "src/telemetry/symbols.h"
#include "src/workload/catalog.h"
#include "src/workload/experiment.h"
#include "src/workload/fleet.h"

namespace {

const workload::Catalog& SharedCatalog() {
  static const workload::Catalog* catalog = new workload::Catalog();
  return *catalog;
}

std::string TempPath(const std::string& leaf) {
  std::filesystem::path dir = std::filesystem::temp_directory_path() / "hd_fault_injection";
  std::filesystem::create_directories(dir);
  return (dir / leaf).string();
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// One fleet job per study app under `profile`, sized for a quick integration run.
std::vector<workload::FleetJob> StudyFleet(const faultsim::FaultProfile& profile,
                                           const hangdoctor::BlockingApiDatabase* known_db,
                                           simkit::SimDuration session = simkit::Seconds(30)) {
  const workload::Catalog& catalog = SharedCatalog();
  std::vector<workload::FleetJob> jobs;
  for (const droidsim::AppSpec* spec : catalog.study_apps()) {
    workload::FleetJob job;
    job.spec = spec;
    job.profile = droidsim::LgV10();
    job.seed = workload::FleetSeed(4242, jobs.size());
    job.session = session;
    job.device_id = static_cast<int32_t>(jobs.size());
    job.known_db = known_db;
    job.faults = profile;
    jobs.push_back(job);
  }
  return jobs;
}

hangdoctor::DegradationStats SumDegradation(const workload::FleetSummary& summary) {
  hangdoctor::DegradationStats total;
  for (const workload::FleetJobResult& result : summary.jobs) {
    total.counter_open_failures += result.degradation.counter_open_failures;
    total.counter_retries += result.degradation.counter_retries;
    total.invalid_counter_windows += result.degradation.invalid_counter_windows;
    total.degraded_checks += result.degradation.degraded_checks;
    total.empty_trace_windows += result.degradation.empty_trace_windows;
    total.dropped_records += result.degradation.dropped_records;
    total.counters_unavailable = total.counters_unavailable ||
                                 result.degradation.counters_unavailable;
  }
  return total;
}

void ExpectJobsEqual(const workload::FleetSummary& a, const workload::FleetSummary& b,
                     const std::string& label) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size()) << label;
  EXPECT_EQ(a.failed, b.failed) << label;
  EXPECT_EQ(a.merged_report.Render(4), b.merged_report.Render(4)) << label;
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    const workload::FleetJobResult& x = a.jobs[i];
    const workload::FleetJobResult& y = b.jobs[i];
    EXPECT_EQ(x.report.Render(4), y.report.Render(4)) << label << " job " << i;
    EXPECT_EQ(x.stack_samples, y.stack_samples) << label << " job " << i;
    EXPECT_DOUBLE_EQ(x.overhead_pct, y.overhead_pct) << label << " job " << i;
    EXPECT_EQ(x.stream_ok, y.stream_ok) << label << " job " << i;
    EXPECT_EQ(x.stream_error, y.stream_error) << label << " job " << i;
    EXPECT_EQ(x.degradation.counter_open_failures, y.degradation.counter_open_failures)
        << label << " job " << i;
    EXPECT_EQ(x.degradation.counter_retries, y.degradation.counter_retries)
        << label << " job " << i;
    EXPECT_EQ(x.degradation.invalid_counter_windows, y.degradation.invalid_counter_windows)
        << label << " job " << i;
    EXPECT_EQ(x.degradation.degraded_checks, y.degradation.degraded_checks)
        << label << " job " << i;
    EXPECT_EQ(x.degradation.empty_trace_windows, y.degradation.empty_trace_windows)
        << label << " job " << i;
    EXPECT_EQ(x.degradation.dropped_records, y.degradation.dropped_records)
        << label << " job " << i;
    EXPECT_EQ(x.degradation.counters_unavailable, y.degradation.counters_unavailable)
        << label << " job " << i;
  }
}

TEST(FaultPlanTest, NamedProfilesRoundTripAndUnknownThrows) {
  std::vector<std::string> names = faultsim::FaultProfile::KnownProfiles();
  ASSERT_EQ(names.size(), 7u);
  for (const std::string& name : names) {
    faultsim::FaultProfile profile = faultsim::FaultProfile::Named(name);
    EXPECT_EQ(profile.name, name);
    EXPECT_EQ(profile.enabled(), name != "none") << name;
  }
  EXPECT_THROW(faultsim::FaultProfile::Named("bogus"), std::invalid_argument);
  EXPECT_FALSE(faultsim::FaultProfile{}.enabled());
}

TEST(FaultPlanTest, DecisionStreamsAreAPureFunctionOfProfileAndSeed) {
  faultsim::FaultProfile chaos = faultsim::FaultProfile::Named("chaos");
  faultsim::FaultPlan a(chaos, 99);
  faultsim::FaultPlan b(chaos, 99);
  faultsim::FaultPlan other(chaos, 100);
  bool any_difference = false;
  for (int i = 0; i < 512; ++i) {
    EXPECT_EQ(a.NextCounterOpen(), b.NextCounterOpen());
    EXPECT_EQ(a.NextCounterReadInvalid(), b.NextCounterReadInvalid());
    EXPECT_EQ(a.NextWindowFate(), b.NextWindowFate());
    EXPECT_EQ(a.NextSampleDrop(), b.NextSampleDrop());
    faultsim::FaultPlan::RecordFate fate = a.NextRecordFate();
    EXPECT_EQ(fate, b.NextRecordFate());
    if (fate != other.NextRecordFate()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference) << "different seeds should draw different fault sequences";
}

TEST(FaultPlanTest, PermanentCounterFailureIsSticky) {
  faultsim::FaultProfile profile = faultsim::FaultProfile::Named("no-counters");
  faultsim::FaultPlan plan(profile, 7);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(plan.NextCounterOpen(), faultsim::FaultPlan::CounterOpen::kPermanentFailure);
  }
}

TEST(FaultInjectionTest, NoFaultPlanIsByteIdenticalToPlanlessRun) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();

  workload::FleetJob plain;
  plain.spec = catalog.study_apps()[0];
  plain.profile = droidsim::LgV10();
  plain.seed = workload::FleetSeed(11, 0);
  plain.session = simkit::Seconds(30);
  plain.known_db = &known_db;
  plain.record_path = TempPath("planless.hdsl");

  workload::FleetJob with_none = plain;
  with_none.faults = faultsim::FaultProfile::Named("none");
  with_none.record_path = TempPath("none_profile.hdsl");

  workload::FleetJobResult a = workload::RunFleetJob(plain);
  workload::FleetJobResult b = workload::RunFleetJob(with_none);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_TRUE(a.record_ok);
  EXPECT_TRUE(b.record_ok);
  EXPECT_EQ(a.report.Render(4), b.report.Render(4));
  EXPECT_EQ(a.stack_samples, b.stack_samples);
  EXPECT_DOUBLE_EQ(a.overhead_pct, b.overhead_pct);
  EXPECT_FALSE(a.degradation.Degraded());
  EXPECT_FALSE(b.degradation.Degraded());
  EXPECT_EQ(FileBytes(plain.record_path), FileBytes(with_none.record_path));
}

TEST(FaultInjectionTest, EveryProfileRunsEveryStudyAppToCompletion) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  for (const std::string& name : faultsim::FaultProfile::KnownProfiles()) {
    faultsim::FaultProfile profile = faultsim::FaultProfile::Named(name);
    std::vector<workload::FleetJob> jobs = StudyFleet(profile, &known_db);
    workload::FleetSummary summary = workload::RunFleet(jobs, {.jobs = 4});
    ASSERT_EQ(summary.failed, 0u) << name;
    hangdoctor::DegradationStats total = SumDegradation(summary);

    if (name == "none" || name == "torn-log") {
      // torn-log only bites when a recorder is attached (none here); detection is clean.
      EXPECT_EQ(total.counter_open_failures, 0) << name;
      EXPECT_EQ(total.dropped_records, 0) << name;
      EXPECT_FALSE(total.counters_unavailable) << name;
    }
    if (name == "flaky-counters") {
      EXPECT_GT(total.counter_open_failures, 0) << name;
      EXPECT_GT(total.counter_retries, 0) << name;
    }
    if (name == "no-counters") {
      for (size_t i = 0; i < summary.jobs.size(); ++i) {
        EXPECT_TRUE(summary.jobs[i].degradation.counters_unavailable) << name << " job " << i;
        EXPECT_GT(summary.jobs[i].degradation.counter_open_failures, 0)
            << name << " job " << i;
      }
    }
    if (name == "lossy-sampler") {
      EXPECT_GT(total.empty_trace_windows, 0) << name;
    }
    if (name == "reorder") {
      bool stream_tripped = false;
      for (const workload::FleetJobResult& result : summary.jobs) {
        if (!result.stream_ok) {
          stream_tripped = true;
        }
      }
      EXPECT_TRUE(total.dropped_records > 0 || stream_tripped) << name;
    }
    if (name == "chaos") {
      EXPECT_TRUE(total.Degraded()) << name;
    }
  }
}

TEST(FaultInjectionTest, DegradedFleetIsDeterministicAtAnyParallelism) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  faultsim::FaultProfile chaos = faultsim::FaultProfile::Named("chaos");

  std::vector<workload::FleetJob> serial_jobs = StudyFleet(chaos, &known_db);
  std::vector<workload::FleetJob> parallel_jobs = StudyFleet(chaos, &known_db);
  workload::FleetSummary serial = workload::RunFleet(serial_jobs, {.jobs = 1});
  workload::FleetSummary parallel = workload::RunFleet(parallel_jobs, {.jobs = 4});
  ASSERT_EQ(serial.failed, 0u);
  ExpectJobsEqual(serial, parallel, "chaos jobs=1 vs jobs=4");
  EXPECT_TRUE(SumDegradation(serial).Degraded());
}

TEST(FaultInjectionTest, FaultySessionsRecordAndReplayBitIdentically) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  // flaky-counters and reorder both write tagged fault evidence into the log (CounterFault
  // records; duplicated/regressed records); neither tears the log itself.
  for (const std::string& name : {std::string("flaky-counters"), std::string("reorder")}) {
    faultsim::FaultProfile profile = faultsim::FaultProfile::Named(name);
    std::vector<workload::FleetJob> serial_jobs = StudyFleet(profile, &known_db);
    std::vector<workload::FleetJob> parallel_jobs = StudyFleet(profile, &known_db);
    serial_jobs.resize(4);
    parallel_jobs.resize(4);
    for (size_t i = 0; i < serial_jobs.size(); ++i) {
      serial_jobs[i].record_path = TempPath(name + "_serial_" + std::to_string(i) + ".hdsl");
      parallel_jobs[i].record_path =
          TempPath(name + "_parallel_" + std::to_string(i) + ".hdsl");
    }
    workload::FleetSummary serial = workload::RunFleet(serial_jobs, {.jobs = 1});
    workload::FleetSummary parallel = workload::RunFleet(parallel_jobs, {.jobs = 4});
    ASSERT_EQ(serial.failed, 0u) << name;
    ExpectJobsEqual(serial, parallel, name + " recorded");
    for (size_t i = 0; i < serial_jobs.size(); ++i) {
      EXPECT_TRUE(serial.jobs[i].record_ok) << name << " job " << i;
      EXPECT_EQ(FileBytes(serial_jobs[i].record_path),
                FileBytes(parallel_jobs[i].record_path))
          << name << " job " << i;
    }

    // Offline replay of the faulty logs reproduces every degraded observable.
    std::vector<std::string> paths;
    for (const workload::FleetJob& job : serial_jobs) {
      paths.push_back(job.record_path);
    }
    workload::FleetSummary replayed = workload::ReplayFleet(paths, {.jobs = 2}, &known_db);
    ASSERT_EQ(replayed.failed, 0u) << name;
    for (size_t i = 0; i < paths.size(); ++i) {
      const workload::FleetJobResult& live = serial.jobs[i];
      const workload::FleetJobResult& replay = replayed.jobs[i];
      EXPECT_EQ(live.report.Render(4), replay.report.Render(4)) << name << " job " << i;
      EXPECT_EQ(live.stack_samples, replay.stack_samples) << name << " job " << i;
      EXPECT_DOUBLE_EQ(live.overhead_pct, replay.overhead_pct) << name << " job " << i;
      EXPECT_EQ(live.stream_ok, replay.stream_ok) << name << " job " << i;
      EXPECT_EQ(live.stream_error, replay.stream_error) << name << " job " << i;
      EXPECT_EQ(live.degradation.counter_open_failures,
                replay.degradation.counter_open_failures)
          << name << " job " << i;
      EXPECT_EQ(live.degradation.counters_unavailable,
                replay.degradation.counters_unavailable)
          << name << " job " << i;
      EXPECT_EQ(live.degradation.dropped_records, replay.degradation.dropped_records)
          << name << " job " << i;
    }
  }
}

TEST(FaultInjectionTest, NoCountersRunsFlagEveryDiagnosedBugDegraded) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  std::vector<workload::FleetJob> jobs =
      StudyFleet(faultsim::FaultProfile::Named("no-counters"), &known_db,
                 simkit::Seconds(45));
  workload::FleetSummary summary = workload::RunFleet(jobs, {.jobs = 4});
  ASSERT_EQ(summary.failed, 0u);

  std::vector<hangdoctor::BugReportEntry> entries = summary.merged_report.SortedEntries();
  ASSERT_FALSE(entries.empty()) << "study apps should still diagnose bugs without counters";
  for (const hangdoctor::BugReportEntry& entry : entries) {
    EXPECT_TRUE(entry.degraded) << entry.api << "@" << entry.file << ":" << entry.line;
  }
  EXPECT_NE(summary.merged_report.Render(4).find("[degraded]"), std::string::npos);
}

TEST(FaultInjectionTest, TornLogSurfacesRecordFailureWithoutFailingTheJob) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();

  workload::FleetJob job;
  job.spec = catalog.study_apps()[0];
  job.profile = droidsim::LgV10();
  job.seed = workload::FleetSeed(17, 0);
  job.session = simkit::Seconds(30);
  job.known_db = &known_db;
  job.faults = faultsim::FaultProfile::Named("torn-log");
  job.record_path = TempPath("torn.hdsl");

  workload::FleetJobResult result = workload::RunFleetJob(job);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.record_ok);
  EXPECT_NE(result.record_error.find("torn.hdsl"), std::string::npos);
  // Detection itself was untouched: a plan-less run of the same job matches.
  workload::FleetJob clean = job;
  clean.faults = faultsim::FaultProfile{};
  clean.record_path.clear();
  workload::FleetJobResult baseline = workload::RunFleetJob(clean);
  EXPECT_EQ(result.report.Render(4), baseline.report.Render(4));

  // The torn file is at most the injected budget and the reader rejects it cleanly.
  EXPECT_LE(std::filesystem::file_size(job.record_path),
            static_cast<uintmax_t>(job.faults.hdsl_fail_after));
  std::string error;
  EXPECT_EQ(hangdoctor::ReplaySessionLog(job.record_path, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(SessionLogWriterTest, ShortWriteIsStickyAndUnopenablePathFailsFast) {
  const std::string path = TempPath("sticky.hdsl");
  {
    hangdoctor::SessionLogWriter writer(path, hangdoctor::HangDoctorConfig{});
    ASSERT_TRUE(writer.ok());
    writer.SetFailAfter(2);
    writer.WriteTraceUsage(1000, 2000);  // needs more than 2 bytes
    EXPECT_FALSE(writer.ok());
    int64_t written = writer.bytes_written();
    EXPECT_LE(written, 2);
    // Every later write is swallowed and the flag never un-sets.
    writer.WriteTraceUsage(1, 2);
    EXPECT_FALSE(writer.ok());
    EXPECT_EQ(writer.bytes_written(), written);
    writer.Finish();
    EXPECT_FALSE(writer.ok());
  }
  hangdoctor::SessionLogWriter bad("/nonexistent_dir_hd/fault.hdsl",
                                   hangdoctor::HangDoctorConfig{});
  EXPECT_FALSE(bad.ok());
  bad.WriteTraceUsage(1, 2);  // must be a safe no-op
  EXPECT_FALSE(bad.ok());
}

TEST(DetectorCoreValidationTest, ConstructionRejectsInvalidSessionInfo) {
  telemetry::SymbolTable symbols;
  hangdoctor::SessionInfo null_symbols;
  null_symbols.app_package = "com.example";
  null_symbols.num_actions = 4;
  null_symbols.symbols = nullptr;
  EXPECT_THROW(hangdoctor::DetectorCore(null_symbols, hangdoctor::HangDoctorConfig{}),
               std::invalid_argument);

  hangdoctor::SessionInfo zero_actions;
  zero_actions.app_package = "com.example";
  zero_actions.num_actions = 0;
  zero_actions.symbols = &symbols;
  EXPECT_THROW(hangdoctor::DetectorCore(zero_actions, hangdoctor::HangDoctorConfig{}),
               std::invalid_argument);

  hangdoctor::SessionInfo negative_actions = zero_actions;
  negative_actions.num_actions = -3;
  EXPECT_THROW(hangdoctor::DetectorCore(negative_actions, hangdoctor::HangDoctorConfig{}),
               std::invalid_argument);

  hangdoctor::SessionInfo valid = zero_actions;
  valid.num_actions = 2;
  EXPECT_NO_THROW(hangdoctor::DetectorCore(valid, hangdoctor::HangDoctorConfig{}));
}

}  // namespace
