// Unit tests for the Android-like runtime: API registry, Looper dispatch, operation executor,
// render thread, app lifecycle and quiescence, stack sampling, device profiles.
#include <gtest/gtest.h>

#include <span>

#include "src/droidsim/api.h"
#include "src/droidsim/app.h"
#include "src/droidsim/phone.h"
#include "src/droidsim/stack_sampler.h"
#include "src/workload/api_catalog.h"

namespace {

using droidsim::ActionSpec;
using droidsim::App;
using droidsim::AppSpec;
using droidsim::InputEventSpec;
using droidsim::OpNode;
using droidsim::Phone;

// Shared fixture: one phone with the standard API catalog.
class DroidsimTest : public ::testing::Test {
 protected:
  DroidsimTest() : phone_(droidsim::LgV10(), /*seed=*/5) {
    apis_ = workload::BuildStandardApis(&registry_);
  }

  // Builds a one-action app whose single event executes `ops`.
  AppSpec MakeApp(std::vector<OpNode> ops, const std::string& name = "TestApp") {
    AppSpec spec;
    spec.name = name;
    spec.package = "com.test." + name;
    ActionSpec action;
    action.name = "Go";
    InputEventSpec event;
    event.handler = "onClick";
    event.handler_file = "Test.java";
    event.handler_line = 10;
    event.ops = std::move(ops);
    action.events.push_back(std::move(event));
    spec.actions.push_back(std::move(action));
    return spec;
  }

  droidsim::ApiRegistry registry_;
  workload::StandardApis apis_;
  Phone phone_;
};

class RecordingObserver : public droidsim::AppObserver {
 public:
  void OnInputEventStart(App&, const droidsim::ActionExecution&, int32_t event_index) override {
    starts.push_back(event_index);
  }
  void OnInputEventEnd(App&, const droidsim::ActionExecution& execution,
                       int32_t event_index) override {
    ends.push_back(event_index);
    last_execution = execution;
  }
  void OnActionQuiesced(App&, const droidsim::ActionExecution& execution) override {
    ++quiesced;
    last_execution = execution;
  }
  std::vector<int32_t> starts;
  std::vector<int32_t> ends;
  int quiesced = 0;
  droidsim::ActionExecution last_execution;
};

TEST(ApiRegistryTest, InternAndFind) {
  droidsim::ApiRegistry registry;
  droidsim::ApiSpec spec;
  spec.name = "open";
  spec.clazz = "android.hardware.Camera";
  const droidsim::ApiSpec* interned = registry.Register(spec);
  EXPECT_EQ(interned->FullName(), "android.hardware.Camera.open");
  EXPECT_EQ(registry.Find("android.hardware.Camera.open"), interned);
  EXPECT_EQ(registry.Find("nope"), nullptr);
  // Re-registering updates in place and keeps the pointer stable.
  spec.known_blocking = true;
  const droidsim::ApiSpec* again = registry.Register(spec);
  EXPECT_EQ(again, interned);
  EXPECT_TRUE(interned->known_blocking);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ApiRegistryTest, AllSpecsEnumerates) {
  droidsim::ApiRegistry registry;
  workload::StandardApis apis = workload::BuildStandardApis(&registry);
  (void)apis;
  EXPECT_GT(registry.AllSpecs().size(), 40u);
}

TEST(UiClassTest, RecognizesUiPackages) {
  EXPECT_TRUE(droidsim::IsUiClass("android.view.LayoutInflater"));
  EXPECT_TRUE(droidsim::IsUiClass("android.widget.TextView"));
  EXPECT_TRUE(droidsim::IsUiClass("android.webkit.WebView"));
  EXPECT_TRUE(droidsim::IsUiClass("androidx.recyclerview.widget.RecyclerView"));
  EXPECT_FALSE(droidsim::IsUiClass("android.hardware.Camera"));
  EXPECT_FALSE(droidsim::IsUiClass("org.htmlcleaner.HtmlCleaner"));
  EXPECT_FALSE(droidsim::IsUiClass("com.google.gson.Gson"));
}

TEST_F(DroidsimTest, ActionDispatchesAndQuiesces) {
  AppSpec spec = MakeApp({droidsim::MakeOp(apis_.ui_set_text, "Test.java", 20)});
  App* app = phone_.InstallApp(&spec);
  RecordingObserver observer;
  app->AddObserver(&observer);
  app->PerformAction(0);
  phone_.RunFor(simkit::Seconds(5));
  EXPECT_EQ(observer.starts, (std::vector<int32_t>{0}));
  EXPECT_EQ(observer.ends, (std::vector<int32_t>{0}));
  EXPECT_EQ(observer.quiesced, 1);
  EXPECT_GT(observer.last_execution.max_response, 0);
}

TEST_F(DroidsimTest, ResponseTimeTracksOpCost) {
  // gson_tojson has an 800 ms mean CPU cost; the response must be in that ballpark.
  OpNode bug = droidsim::MakeOp(apis_.gson_tojson, "Test.java", 20);
  bug.manifest_probability = 1.0;
  AppSpec spec = MakeApp({std::move(bug)});
  App* app = phone_.InstallApp(&spec);
  RecordingObserver observer;
  app->AddObserver(&observer);
  app->PerformAction(0);
  phone_.RunFor(simkit::Seconds(10));
  EXPECT_GT(observer.last_execution.max_response, simkit::Milliseconds(250));
  EXPECT_LT(observer.last_execution.max_response, simkit::Seconds(4));
}

TEST_F(DroidsimTest, MultiEventActionUsesMaxResponse) {
  AppSpec spec;
  spec.name = "Multi";
  spec.package = "com.test.multi";
  ActionSpec action;
  action.name = "TwoEvents";
  for (const droidsim::ApiSpec* api : {apis_.ui_set_text, apis_.ui_inflate}) {
    InputEventSpec event;
    event.handler = "onClick";
    event.handler_file = "Multi.java";
    event.handler_line = 5;
    event.ops.push_back(droidsim::MakeOp(api, "Multi.java", 9));
    action.events.push_back(std::move(event));
  }
  spec.actions.push_back(std::move(action));
  App* app = phone_.InstallApp(&spec);
  RecordingObserver observer;
  app->AddObserver(&observer);
  app->PerformAction(0);
  phone_.RunFor(simkit::Seconds(5));
  EXPECT_EQ(observer.ends.size(), 2u);
  EXPECT_EQ(observer.quiesced, 1);
  // max_response reflects the heavier event (inflate ~90 ms vs setText ~6 ms).
  EXPECT_GT(observer.last_execution.max_response, simkit::Milliseconds(30));
}

TEST_F(DroidsimTest, ContributionsRecordCulpritAndDuration) {
  OpNode bug = droidsim::MakeOp(apis_.html_clean, "Mail.java", 25);
  bug.manifest_probability = 1.0;
  AppSpec spec = MakeApp({droidsim::MakeOp(apis_.ui_set_text, "Mail.java", 20), std::move(bug)});
  App* app = phone_.InstallApp(&spec);
  RecordingObserver observer;
  app->AddObserver(&observer);
  app->PerformAction(0);
  phone_.RunFor(simkit::Seconds(10));
  ASSERT_EQ(observer.last_execution.contributions.size(), 2u);
  const droidsim::OpContribution* clean = nullptr;
  for (const droidsim::OpContribution& contribution : observer.last_execution.contributions) {
    if (contribution.api == apis_.html_clean) {
      clean = &contribution;
    }
  }
  ASSERT_NE(clean, nullptr);
  EXPECT_EQ(clean->file, "Mail.java");
  EXPECT_EQ(clean->line, 25);
  EXPECT_GT(clean->self_duration, simkit::Milliseconds(200));
  EXPECT_EQ(clean->caller, "onClick");
}

TEST_F(DroidsimTest, NestedOpsReportParentAsCaller) {
  OpNode wrapper = droidsim::MakeOp(apis_.cupboard_get, "Helper.java", 29);
  wrapper.children.push_back(droidsim::MakeOp(apis_.db_insert, "Converter.java", 205));
  AppSpec spec = MakeApp({std::move(wrapper)});
  App* app = phone_.InstallApp(&spec);
  RecordingObserver observer;
  app->AddObserver(&observer);
  app->PerformAction(0);
  phone_.RunFor(simkit::Seconds(10));
  const droidsim::OpContribution* insert = nullptr;
  for (const droidsim::OpContribution& contribution : observer.last_execution.contributions) {
    if (contribution.api == apis_.db_insert) {
      insert = &contribution;
    }
  }
  ASSERT_NE(insert, nullptr);
  EXPECT_EQ(insert->caller, "nl.qbusict.cupboard.Cupboard.get");
}

TEST_F(DroidsimTest, DormantOpIsCheap) {
  OpNode bug = droidsim::MakeOp(apis_.gson_tojson, "Test.java", 20);
  bug.manifest_probability = 0.0;  // never manifests
  AppSpec spec = MakeApp({std::move(bug)});
  App* app = phone_.InstallApp(&spec);
  RecordingObserver observer;
  app->AddObserver(&observer);
  app->PerformAction(0);
  phone_.RunFor(simkit::Seconds(5));
  EXPECT_LT(observer.last_execution.max_response, simkit::Milliseconds(100));
  EXPECT_FALSE(observer.last_execution.contributions.at(0).manifested);
}

TEST_F(DroidsimTest, WorkerSubtreeLeavesMainThreadFast) {
  OpNode heavy = droidsim::MakeOp(apis_.gson_tojson, "Test.java", 20);
  heavy.on_worker = true;
  AppSpec spec = MakeApp({std::move(heavy)});
  App* app = phone_.InstallApp(&spec);
  RecordingObserver observer;
  app->AddObserver(&observer);
  app->PerformAction(0);
  phone_.RunFor(simkit::Seconds(10));
  EXPECT_LT(observer.last_execution.max_response, simkit::Milliseconds(50));
  // The worker looper actually executed the subtree.
  EXPECT_GT(phone_.kernel().GetThread(app->worker_looper().tid()).stats.cpu_time,
            simkit::Milliseconds(100));
}

TEST_F(DroidsimTest, UiOpsFeedRenderThread) {
  AppSpec spec = MakeApp({droidsim::MakeOp(apis_.ui_inflate, "Test.java", 20)});
  App* app = phone_.InstallApp(&spec);
  app->PerformAction(0);
  phone_.RunFor(simkit::Seconds(5));
  EXPECT_GT(app->render_thread().rendered_frames(), 0);
  EXPECT_GT(phone_.kernel().GetThread(app->render_tid()).stats.cpu_time,
            simkit::Milliseconds(20));
}

TEST_F(DroidsimTest, QuiesceWaitsForRenderDrain) {
  AppSpec spec = MakeApp({droidsim::MakeOp(apis_.ui_webview_layout, "Test.java", 20)});
  App* app = phone_.InstallApp(&spec);
  RecordingObserver observer;
  app->AddObserver(&observer);
  app->PerformAction(0);
  // Once quiesced, the render thread must have no outstanding frames for this execution.
  phone_.RunFor(simkit::Seconds(8));
  EXPECT_EQ(observer.quiesced, 1);
  EXPECT_TRUE(app->render_thread().Idle());
}

TEST_F(DroidsimTest, MainStackShowsExecutingFrames) {
  OpNode bug = droidsim::MakeOp(apis_.html_clean, "Mail.java", 25);
  bug.manifest_probability = 1.0;
  AppSpec spec = MakeApp({std::move(bug)});
  App* app = phone_.InstallApp(&spec);
  app->PerformAction(0);
  // 300 ms in, the main thread is inside clean().
  phone_.RunFor(simkit::Milliseconds(300));
  const std::vector<telemetry::FrameId>& stack = app->MainStack();
  ASSERT_GE(stack.size(), 2u);
  const droidsim::SymbolTable& symbols = app->symbols();
  EXPECT_EQ(symbols.Frame(stack.front()).function, "onClick");
  EXPECT_EQ(symbols.Frame(stack.back()).function, "clean");
  EXPECT_EQ(symbols.Frame(stack.back()).clazz, "org.htmlcleaner.HtmlCleaner");
  phone_.RunFor(simkit::Seconds(10));
  EXPECT_TRUE(app->MainStack().empty());  // idle after the event
}

TEST_F(DroidsimTest, StackSamplerCollectsDuringHang) {
  OpNode bug = droidsim::MakeOp(apis_.html_clean, "Mail.java", 25);
  bug.manifest_probability = 1.0;
  AppSpec spec = MakeApp({std::move(bug)});
  App* app = phone_.InstallApp(&spec);
  droidsim::StackSampler sampler(&phone_.sim(), &app->main_looper(), simkit::Milliseconds(20));
  app->PerformAction(0);
  phone_.RunFor(simkit::Milliseconds(150));
  sampler.StartCollection();
  phone_.RunFor(simkit::Milliseconds(400));
  std::span<const telemetry::StackTrace> traces = sampler.StopCollection();
  EXPECT_FALSE(sampler.active());
  ASSERT_GE(traces.size(), 10u);
  int with_clean = 0;
  for (const telemetry::StackTrace& trace : traces) {
    with_clean +=
        app->symbols().TraceContains(trace, "org.htmlcleaner.HtmlCleaner", "clean") ? 1 : 0;
  }
  EXPECT_GT(with_clean, static_cast<int>(traces.size() / 2));
  // A second collection starts clean.
  sampler.StartCollection();
  EXPECT_TRUE(sampler.active());
  phone_.RunFor(simkit::Milliseconds(60));
  EXPECT_FALSE(sampler.StopCollection().empty());
}

TEST_F(DroidsimTest, MessageLoggerFiresBeginAndEnd) {
  AppSpec spec = MakeApp({droidsim::MakeOp(apis_.ui_set_text, "Test.java", 20)});
  App* app = phone_.InstallApp(&spec);
  std::vector<bool> phases;
  app->main_looper().AddMessageLogger(
      [&](bool begin, const droidsim::Message&) { phases.push_back(begin); });
  app->PerformAction(0);
  phone_.RunFor(simkit::Seconds(3));
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_TRUE(phases[0]);
  EXPECT_FALSE(phases[1]);
  EXPECT_EQ(app->main_looper().dispatched_messages(), 1);
  EXPECT_TRUE(app->main_looper().Idle());
}

TEST_F(DroidsimTest, QueuedMessagesDispatchInOrder) {
  AppSpec spec = MakeApp({droidsim::MakeOp(apis_.ui_inflate, "Test.java", 20)});
  App* app = phone_.InstallApp(&spec);
  std::vector<int64_t> order;
  app->main_looper().AddMessageLogger([&](bool begin, const droidsim::Message& message) {
    if (begin) {
      order.push_back(message.execution_id);
    }
  });
  int64_t first = app->PerformAction(0);
  int64_t second = app->PerformAction(0);
  phone_.RunFor(simkit::Seconds(5));
  EXPECT_EQ(order, (std::vector<int64_t>{first, second}));
}

TEST(DeviceProfileTest, ProfilesDiffer) {
  droidsim::DeviceProfile v10 = droidsim::LgV10();
  droidsim::DeviceProfile n5 = droidsim::Nexus5();
  droidsim::DeviceProfile s3 = droidsim::GalaxyS3();
  EXPECT_EQ(v10.pmu.hardware_registers, 6);
  EXPECT_EQ(n5.pmu.hardware_registers, 4);
  EXPECT_TRUE(v10.has_render_thread);
  EXPECT_FALSE(s3.has_render_thread);
  // The S3's flash is slower than the V10's.
  EXPECT_GT(s3.devices[static_cast<size_t>(droidsim::DeviceKind::kFlash)].base_latency,
            v10.devices[static_cast<size_t>(droidsim::DeviceKind::kFlash)].base_latency);
}

TEST(StackTraceTest, FormatAndContains) {
  telemetry::StackFrame frame{"clean", "org.htmlcleaner.HtmlCleaner", "HtmlSanitizer.java", 25,
                             true};
  EXPECT_EQ(telemetry::FormatFrame(frame), "clean(HtmlSanitizer.java:25)");
  droidsim::SymbolTable symbols;
  telemetry::FrameId id = symbols.Intern(frame);
  // Re-interning the same identity returns the same id.
  EXPECT_EQ(symbols.Intern(frame), id);
  EXPECT_EQ(symbols.Frame(id), frame);
  EXPECT_FALSE(symbols.IsUi(id));
  telemetry::StackTrace trace;
  trace.frames.push_back(id);
  EXPECT_TRUE(trace.Contains(id));
  EXPECT_TRUE(symbols.TraceContains(trace, "org.htmlcleaner.HtmlCleaner", "clean"));
  EXPECT_FALSE(symbols.TraceContains(trace, "org.htmlcleaner.HtmlCleaner", "dirty"));
}

}  // namespace
