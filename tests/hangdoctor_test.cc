// Unit tests for the Hang Doctor core components in isolation: the soft hang filter, the
// action state machine, the trace analyzer, the report, the blocking-API database, the
// correlation trainer and the overhead meter.
#include <gtest/gtest.h>

#include "src/droidsim/symbols.h"
#include "src/hangdoctor/action_state.h"
#include "src/hangdoctor/blocking_api_db.h"
#include "src/hangdoctor/correlation.h"
#include "src/hangdoctor/filter.h"
#include "src/hangdoctor/overhead.h"
#include "src/hangdoctor/report.h"
#include "src/hangdoctor/trace_analyzer.h"

namespace {

using hangdoctor::ActionState;
using hangdoctor::ActionTable;
using hangdoctor::Diagnosis;
using hangdoctor::FilterCondition;
using hangdoctor::LabeledSample;
using hangdoctor::SoftHangFilter;
using hangdoctor::TraceAnalyzer;
using telemetry::PerfEventType;

telemetry::CounterArray Diffs(double ctx, double task, double page) {
  telemetry::CounterArray diffs{};
  diffs[static_cast<size_t>(PerfEventType::kContextSwitches)] = ctx;
  diffs[static_cast<size_t>(PerfEventType::kTaskClock)] = task;
  diffs[static_cast<size_t>(PerfEventType::kPageFaults)] = page;
  return diffs;
}

TEST(FilterTest, DefaultMatchesPaperConditions) {
  SoftHangFilter filter = SoftHangFilter::Default();
  ASSERT_EQ(filter.conditions().size(), 3u);
  EXPECT_EQ(filter.conditions()[0].event, PerfEventType::kContextSwitches);
  EXPECT_DOUBLE_EQ(filter.conditions()[0].threshold, 0.0);
  EXPECT_EQ(filter.conditions()[1].event, PerfEventType::kTaskClock);
  EXPECT_DOUBLE_EQ(filter.conditions()[1].threshold, 1.7e8);
  EXPECT_EQ(filter.conditions()[2].event, PerfEventType::kPageFaults);
  EXPECT_DOUBLE_EQ(filter.conditions()[2].threshold, 500.0);
}

TEST(FilterTest, AnyConditionTriggers) {
  SoftHangFilter filter = SoftHangFilter::Default();
  EXPECT_FALSE(filter.HasSymptoms(Diffs(-10, 1e8, 100)));
  EXPECT_TRUE(filter.HasSymptoms(Diffs(1, 0, 0)));          // ctx only
  EXPECT_TRUE(filter.HasSymptoms(Diffs(-10, 2e8, 0)));      // task only
  EXPECT_TRUE(filter.HasSymptoms(Diffs(-10, 0, 501)));      // page only
  EXPECT_FALSE(filter.HasSymptoms(Diffs(0, 1.7e8, 500)));   // thresholds are strict
}

TEST(FilterTest, MatchVectorPerCondition) {
  SoftHangFilter filter = SoftHangFilter::Default();
  std::vector<bool> matches = filter.MatchVector(Diffs(5, 1e8, 900));
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_TRUE(matches[0]);
  EXPECT_FALSE(matches[1]);
  EXPECT_TRUE(matches[2]);
}

TEST(FilterTest, EventsDeduplicated) {
  SoftHangFilter filter({{PerfEventType::kContextSwitches, 0.0},
                         {PerfEventType::kContextSwitches, 10.0}});
  EXPECT_EQ(filter.Events().size(), 1u);
  EXPECT_FALSE(filter.ToString().empty());
}

TEST(ActionTableTest, TransitionsRecordHistory) {
  ActionTable table;
  table.Transition(100, 1, ActionState::kSuspicious, "symptoms");
  table.Transition(200, 1, ActionState::kHangBug, "diagnosed");
  EXPECT_EQ(table.Lookup(1).state, ActionState::kHangBug);
  ASSERT_EQ(table.transitions().size(), 2u);
  EXPECT_EQ(table.transitions()[0].from, ActionState::kUncategorized);
  EXPECT_EQ(table.transitions()[0].to, ActionState::kSuspicious);
  EXPECT_EQ(table.transitions()[1].time, 200);
}

TEST(ActionTableTest, SelfTransitionIsNoOp) {
  ActionTable table;
  table.Transition(1, 7, ActionState::kNormal, "a");
  table.Transition(2, 7, ActionState::kNormal, "b");
  EXPECT_EQ(table.transitions().size(), 1u);
}

TEST(ActionTableTest, PeriodicResetAfterNormalStreak) {
  ActionTable table(/*reset_after_normal_executions=*/3);
  table.Transition(1, 5, ActionState::kNormal, "ui");
  table.CountNormalExecution(2, 5);
  table.CountNormalExecution(3, 5);
  EXPECT_EQ(table.Lookup(5).state, ActionState::kNormal);
  table.CountNormalExecution(4, 5);
  EXPECT_EQ(table.Lookup(5).state, ActionState::kUncategorized);
  // Becoming Normal again restarts the streak.
  table.Transition(5, 5, ActionState::kNormal, "ui again");
  table.CountNormalExecution(6, 5);
  EXPECT_EQ(table.Lookup(5).state, ActionState::kNormal);
}

TEST(ActionTableTest, CountNormalIgnoresOtherStates) {
  ActionTable table(1);
  table.Transition(1, 2, ActionState::kHangBug, "bug");
  table.CountNormalExecution(2, 2);
  EXPECT_EQ(table.Lookup(2).state, ActionState::kHangBug);
}

const telemetry::StackFrame kHandler{"onClick", "com.app.Main", "Main.java", 10, false};
const telemetry::StackFrame kClean{"clean", "org.htmlcleaner.HtmlCleaner", "Sanitizer.java", 25,
                                  true};
const telemetry::StackFrame kInflate{"inflate", "android.view.LayoutInflater", "Main.java", 30,
                                    false};
const telemetry::StackFrame kLoop{"processAll", "com.app.Loader", "Loader.java", 50, false};

// Interns test frames into its own SymbolTable, the way an App would at construction.
struct AnalyzerFixture {
  droidsim::SymbolTable symbols;

  telemetry::StackTrace Trace(std::initializer_list<telemetry::StackFrame> frames) {
    telemetry::StackTrace trace;
    for (const telemetry::StackFrame& frame : frames) {
      trace.frames.push_back(symbols.Intern(frame));
    }
    return trace;
  }
};

TEST(TraceAnalyzerTest, DominantApiIsCulprit) {
  TraceAnalyzer analyzer;
  AnalyzerFixture fix;
  std::vector<telemetry::StackTrace> traces;
  for (int i = 0; i < 9; ++i) {
    traces.push_back(fix.Trace({kHandler, kClean}));
  }
  traces.push_back(fix.Trace({kHandler, kInflate}));
  Diagnosis diagnosis = analyzer.Analyze(traces, fix.symbols);
  ASSERT_TRUE(diagnosis.valid);
  EXPECT_EQ(diagnosis.culprit.function, "clean");
  EXPECT_NEAR(diagnosis.occurrence_factor, 0.9, 1e-9);
  EXPECT_FALSE(diagnosis.is_ui);
  EXPECT_FALSE(diagnosis.is_self_developed);
}

TEST(TraceAnalyzerTest, UiMajorityIsBenign) {
  TraceAnalyzer analyzer;
  AnalyzerFixture fix;
  std::vector<telemetry::StackTrace> traces;
  for (int i = 0; i < 8; ++i) {
    traces.push_back(fix.Trace({kHandler, kInflate}));
  }
  traces.push_back(fix.Trace({kHandler, kClean}));
  Diagnosis diagnosis = analyzer.Analyze(traces, fix.symbols);
  ASSERT_TRUE(diagnosis.valid);
  EXPECT_TRUE(diagnosis.is_ui);
  EXPECT_EQ(diagnosis.culprit.function, "inflate");
}

TEST(TraceAnalyzerTest, SelfDevelopedCallerWhenNoApiDominates) {
  TraceAnalyzer analyzer;
  AnalyzerFixture fix;
  std::vector<telemetry::StackTrace> traces;
  // Many different light callees below a common self-developed loop frame.
  for (int i = 0; i < 12; ++i) {
    telemetry::StackFrame leaf{"op" + std::to_string(i), "java.util.Helper", "Helper.java",
                              i + 1, false};
    traces.push_back(fix.Trace({kHandler, kLoop, leaf}));
  }
  Diagnosis diagnosis = analyzer.Analyze(traces, fix.symbols);
  ASSERT_TRUE(diagnosis.valid);
  EXPECT_TRUE(diagnosis.is_self_developed);
  EXPECT_EQ(diagnosis.culprit.function, "processAll");
  EXPECT_FALSE(diagnosis.is_ui);
  EXPECT_NEAR(diagnosis.occurrence_factor, 1.0, 1e-9);
}

TEST(TraceAnalyzerTest, EmptyAndIdleTracesInvalid) {
  TraceAnalyzer analyzer;
  AnalyzerFixture fix;
  EXPECT_FALSE(analyzer.Analyze({}, fix.symbols).valid);
  std::vector<telemetry::StackTrace> idle(3);
  EXPECT_FALSE(analyzer.Analyze(idle, fix.symbols).valid);
}

TEST(TraceAnalyzerTest, IdleSamplesAreIgnoredNotCounted) {
  TraceAnalyzer analyzer;
  AnalyzerFixture fix;
  std::vector<telemetry::StackTrace> traces(5);  // idle
  for (int i = 0; i < 5; ++i) {
    traces.push_back(fix.Trace({kHandler, kClean}));
  }
  Diagnosis diagnosis = analyzer.Analyze(traces, fix.symbols);
  ASSERT_TRUE(diagnosis.valid);
  EXPECT_EQ(diagnosis.samples_used, 5u);
  EXPECT_NEAR(diagnosis.occurrence_factor, 1.0, 1e-9);
}

TEST(ReportTest, RecordsAndSorts) {
  hangdoctor::HangBugReport report;
  Diagnosis a;
  a.valid = true;
  a.culprit = kClean;
  Diagnosis b;
  b.valid = true;
  b.culprit = kLoop;
  b.is_self_developed = true;
  report.Record("com.app", a, simkit::Milliseconds(500), /*device_id=*/0);
  report.Record("com.app", a, simkit::Milliseconds(700), /*device_id=*/1);
  report.Record("com.app", b, simkit::Milliseconds(200), /*device_id=*/0);
  ASSERT_EQ(report.NumBugs(), 2u);
  std::vector<hangdoctor::BugReportEntry> entries = report.SortedEntries();
  EXPECT_EQ(entries[0].api, "org.htmlcleaner.HtmlCleaner.clean");  // 2 devices first
  EXPECT_EQ(entries[0].occurrences, 2);
  EXPECT_EQ(entries[0].devices.size(), 2u);
  EXPECT_NEAR(entries[0].MeanHangMs(), 600.0, 1.0);
  EXPECT_EQ(entries[0].max_hang, simkit::Milliseconds(700));
  EXPECT_TRUE(entries[1].self_developed);
  EXPECT_NE(report.Render(2).find("HtmlCleaner"), std::string::npos);
}

TEST(ReportTest, MergeCombinesDevices) {
  hangdoctor::HangBugReport left;
  hangdoctor::HangBugReport right;
  Diagnosis d;
  d.valid = true;
  d.culprit = kClean;
  left.Record("com.app", d, simkit::Milliseconds(300), 0);
  right.Record("com.app", d, simkit::Milliseconds(400), 1);
  right.Record("com.other", d, simkit::Milliseconds(100), 1);
  left.Merge(right);
  EXPECT_EQ(left.NumBugs(), 2u);
  std::vector<hangdoctor::BugReportEntry> entries = left.SortedEntries();
  EXPECT_EQ(entries[0].occurrences, 2);
  EXPECT_EQ(entries[0].devices.size(), 2u);
}

TEST(BlockingApiDbTest, SeedAndDiscover) {
  hangdoctor::BlockingApiDatabase database;
  database.SeedKnown("android.hardware.Camera.open");
  EXPECT_TRUE(database.IsKnown("android.hardware.Camera.open"));
  EXPECT_FALSE(database.IsKnown("com.google.gson.Gson.toJson"));
  EXPECT_TRUE(database.AddDiscovered("com.google.gson.Gson.toJson"));
  EXPECT_TRUE(database.IsKnown("com.google.gson.Gson.toJson"));
  // Re-adding is not a new discovery; neither is a seeded API.
  EXPECT_FALSE(database.AddDiscovered("com.google.gson.Gson.toJson"));
  EXPECT_FALSE(database.AddDiscovered("android.hardware.Camera.open"));
  ASSERT_EQ(database.discovered().size(), 1u);
  EXPECT_EQ(database.discovered()[0], "com.google.gson.Gson.toJson");
}

std::vector<LabeledSample> SeparableSamples() {
  // Bugs: ctx in [10, 30]; UI: ctx in [-30, -10]. task separates a second bug group.
  std::vector<LabeledSample> samples;
  for (int i = 0; i < 10; ++i) {
    LabeledSample bug;
    bug.is_bug = true;
    bug.readings = Diffs(10.0 + i * 2, 1e7, 100);
    samples.push_back(bug);
    LabeledSample ui;
    ui.is_bug = false;
    ui.readings = Diffs(-30.0 + i * 2, -1e7, -100);
    samples.push_back(ui);
  }
  // A bug invisible to ctx but visible to task-clock.
  LabeledSample stealth;
  stealth.is_bug = true;
  stealth.readings = Diffs(-25.0, 5e8, 50);
  samples.push_back(stealth);
  return samples;
}

TEST(CorrelationTest, RankEventsPutsDiscriminativeFirst) {
  std::vector<LabeledSample> samples = SeparableSamples();
  std::vector<hangdoctor::RankedEvent> ranking = hangdoctor::RankEvents(samples);
  // ctx or task must rank ahead of never-varying events.
  EXPECT_TRUE(ranking[0].event == PerfEventType::kContextSwitches ||
              ranking[0].event == PerfEventType::kTaskClock ||
              ranking[0].event == PerfEventType::kPageFaults);
  EXPECT_GT(ranking[0].correlation, 0.5);
  // Constant-zero events correlate at 0.
  double alignment = 0.0;
  for (const hangdoctor::RankedEvent& ranked : ranking) {
    if (ranked.event == PerfEventType::kAlignmentFaults) {
      alignment = ranked.correlation;
    }
  }
  EXPECT_DOUBLE_EQ(alignment, 0.0);
}

TEST(CorrelationTest, TrainFilterCoversEveryBug) {
  std::vector<LabeledSample> samples = SeparableSamples();
  std::vector<hangdoctor::RankedEvent> ranking = hangdoctor::RankEvents(samples);
  SoftHangFilter filter = hangdoctor::TrainFilter(samples, ranking);
  hangdoctor::FilterQuality quality = hangdoctor::EvaluateFilter(filter, samples);
  EXPECT_EQ(quality.false_negatives, 0);  // all bugs covered (the paper's primary target)
  EXPECT_GE(filter.conditions().size(), 1u);
}

TEST(CorrelationTest, EvaluateFilterCountsConfusionMatrix) {
  SoftHangFilter filter({{PerfEventType::kContextSwitches, 0.0}});
  std::vector<LabeledSample> samples;
  LabeledSample tp;
  tp.is_bug = true;
  tp.readings = Diffs(5, 0, 0);
  LabeledSample fn;
  fn.is_bug = true;
  fn.readings = Diffs(-5, 0, 0);
  LabeledSample fp;
  fp.is_bug = false;
  fp.readings = Diffs(5, 0, 0);
  LabeledSample tn;
  tn.is_bug = false;
  tn.readings = Diffs(-5, 0, 0);
  samples = {tp, fn, fp, tn};
  hangdoctor::FilterQuality quality = hangdoctor::EvaluateFilter(filter, samples);
  EXPECT_EQ(quality.true_positives, 1);
  EXPECT_EQ(quality.false_negatives, 1);
  EXPECT_EQ(quality.false_positives, 1);
  EXPECT_EQ(quality.true_negatives, 1);
  EXPECT_DOUBLE_EQ(quality.Accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(quality.FalsePositivePruneRate(), 0.5);
}

TEST(OverheadMeterTest, PercentIsMeanOfCpuAndMemory) {
  hangdoctor::OverheadMeter meter;
  meter.AddCpu(simkit::Milliseconds(10));
  meter.AddMemory(1024);
  // 10 ms of 1 s = 1% CPU; 1 KiB of 100 KiB = 1% memory -> 1% overall.
  EXPECT_NEAR(meter.OverheadPercent(simkit::Seconds(1), 100 * 1024), 1.0, 1e-9);
  meter.Reset();
  EXPECT_DOUBLE_EQ(meter.OverheadPercent(simkit::Seconds(1), 100 * 1024), 0.0);
}

TEST(OverheadMeterTest, ZeroDenominatorsAreSafe) {
  hangdoctor::OverheadMeter meter;
  meter.AddCpu(simkit::Milliseconds(5));
  EXPECT_DOUBLE_EQ(meter.OverheadPercent(0, 0), 0.0);
}

}  // namespace
