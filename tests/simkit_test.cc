// Unit tests for the simulation kit: RNG, event queue, simulation driver, statistics.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/simkit/event_queue.h"
#include "src/simkit/logging.h"
#include "src/simkit/rng.h"
#include "src/simkit/simulation.h"
#include "src/simkit/stats.h"
#include "src/simkit/time.h"

namespace {

using simkit::EventQueue;
using simkit::Rng;
using simkit::Simulation;

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(simkit::Microseconds(1), 1000);
  EXPECT_EQ(simkit::Milliseconds(1), 1000 * 1000);
  EXPECT_EQ(simkit::Seconds(1), 1000 * 1000 * 1000);
  EXPECT_DOUBLE_EQ(simkit::ToMilliseconds(simkit::Milliseconds(250)), 250.0);
  EXPECT_DOUBLE_EQ(simkit::ToSeconds(simkit::Seconds(3)), 3.0);
  EXPECT_EQ(simkit::kPerceivableDelay, simkit::Milliseconds(100));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42, 7);
  Rng b(42, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(42, 7);
  Rng b(43, 7);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU32() == b.NextU32() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, ForkIsIndependentOfDrawOrder) {
  Rng parent1(9, 1);
  Rng parent2(9, 1);
  // Drawing from the parent must not change what a forked child produces.
  parent2.NextU64();
  Rng child1 = parent1.Fork(5);
  Rng child2 = parent2.Fork(5);
  EXPECT_EQ(child1.NextU64(), child2.NextU64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1, 2);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3, 4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5, 6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5, 6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11, 12);
  simkit::RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.Add(rng.Normal(10.0, 3.0));
  }
  EXPECT_NEAR(stat.Mean(), 10.0, 0.15);
  EXPECT_NEAR(stat.StdDev(), 3.0, 0.15);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13, 14);
  simkit::RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.Add(rng.Exponential(5.0));
  }
  EXPECT_NEAR(stat.Mean(), 5.0, 0.25);
}

TEST(RngTest, LogNormalMedianNearOne) {
  Rng rng(15, 16);
  std::vector<double> xs;
  for (int i = 0; i < 10001; ++i) {
    xs.push_back(rng.LogNormal(0.0, 0.5));
  }
  EXPECT_NEAR(simkit::Percentile(xs, 50), 1.0, 0.06);
}

TEST(RngTest, PoissonMean) {
  Rng rng(17, 18);
  simkit::RunningStat small;
  simkit::RunningStat large;
  for (int i = 0; i < 5000; ++i) {
    small.Add(static_cast<double>(rng.Poisson(3.0)));
    large.Add(static_cast<double>(rng.Poisson(100.0)));
  }
  EXPECT_NEAR(small.Mean(), 3.0, 0.2);
  EXPECT_NEAR(large.Mean(), 100.0, 1.5);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(30, [&] { order.push_back(3); });
  queue.ScheduleAt(10, [&] { order.push_back(1); });
  queue.ScheduleAt(20, [&] { order.push_back(2); });
  while (!queue.Empty()) {
    queue.RunNext();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoTieBreak) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(10, [&] { order.push_back(1); });
  queue.ScheduleAt(10, [&] { order.push_back(2); });
  queue.ScheduleAt(10, [&] { order.push_back(3); });
  while (!queue.Empty()) {
    queue.RunNext();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  simkit::EventId id = queue.ScheduleAt(5, [&] { ran = true; });
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_TRUE(queue.Empty());
  EXPECT_FALSE(ran);
  // Double cancel fails.
  EXPECT_FALSE(queue.Cancel(id));
  // Unknown id fails.
  EXPECT_FALSE(queue.Cancel(999));
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(1, [&] { order.push_back(1); });
  simkit::EventId id = queue.ScheduleAt(2, [&] { order.push_back(2); });
  queue.ScheduleAt(3, [&] { order.push_back(3); });
  queue.Cancel(id);
  EXPECT_EQ(queue.Size(), 2u);
  while (!queue.Empty()) {
    queue.RunNext();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, NextTimeReflectsHead) {
  EventQueue queue;
  EXPECT_EQ(queue.NextTime(), simkit::kSimTimeNever);
  queue.ScheduleAt(42, [] {});
  EXPECT_EQ(queue.NextTime(), 42);
}

TEST(SimulationTest, ClockAdvancesWithEvents) {
  Simulation sim;
  simkit::SimTime seen = -1;
  sim.ScheduleAfter(100, [&] { seen = sim.Now(); });
  sim.RunUntil(1000);
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(SimulationTest, RunUntilStopsBeforeLaterEvents) {
  Simulation sim;
  int ran = 0;
  sim.ScheduleAt(100, [&] { ++ran; });
  sim.ScheduleAt(200, [&] { ++ran; });
  sim.RunUntil(150);
  EXPECT_EQ(ran, 1);
  sim.RunUntil(250);
  EXPECT_EQ(ran, 2);
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      sim.ScheduleAfter(10, chain);
    }
  };
  sim.ScheduleAfter(10, chain);
  sim.RunToCompletion();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), 50);
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim;
  sim.ScheduleAt(100, [] {});
  sim.RunUntil(100);
  bool ran = false;
  sim.ScheduleAfter(-50, [&] { ran = true; });
  sim.RunUntil(100);
  EXPECT_TRUE(ran);
}

TEST(SimulationTest, StepRunsOneEvent) {
  Simulation sim;
  int ran = 0;
  sim.ScheduleAt(1, [&] { ++ran; });
  sim.ScheduleAt(2, [&] { ++ran; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(StatsTest, RunningStatBasics) {
  simkit::RunningStat stat;
  for (double x : {2.0, 4.0, 6.0, 8.0}) {
    stat.Add(x);
  }
  EXPECT_DOUBLE_EQ(stat.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.Max(), 8.0);
  EXPECT_NEAR(stat.Variance(), 20.0 / 3.0, 1e-9);
  EXPECT_EQ(stat.Count(), 4u);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(simkit::Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(simkit::Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(simkit::Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(simkit::Percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(simkit::Percentile({}, 50), 0.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(simkit::PearsonCorrelation(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(simkit::PearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerateInputs) {
  std::vector<double> xs = {1, 1, 1};
  std::vector<double> ys = {1, 2, 3};
  EXPECT_DOUBLE_EQ(simkit::PearsonCorrelation(xs, ys), 0.0);  // zero variance
  EXPECT_DOUBLE_EQ(simkit::PearsonCorrelation({}, {}), 0.0);
  std::vector<double> short_x = {1, 2};
  std::vector<double> mismatched = {1, 2, 3};
  EXPECT_DOUBLE_EQ(simkit::PearsonCorrelation(short_x, mismatched), 0.0);
}

TEST(StatsTest, PearsonKnownValue) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 1, 4, 3, 5};
  // Hand-computed: r = 0.8.
  EXPECT_NEAR(simkit::PearsonCorrelation(xs, ys), 0.8, 1e-12);
}

TEST(StatsTest, HistogramBinsAndClamping) {
  simkit::Histogram histogram(0.0, 10.0, 5);
  histogram.Add(-1.0);  // clamps into bin 0
  histogram.Add(0.5);
  histogram.Add(9.9);
  histogram.Add(25.0);  // clamps into last bin
  EXPECT_EQ(histogram.BinCount(0), 2u);
  EXPECT_EQ(histogram.BinCount(4), 2u);
  EXPECT_EQ(histogram.Total(), 4u);
  EXPECT_FALSE(histogram.Render().empty());
}

TEST(LoggingTest, LevelFiltering) {
  simkit::SetLogLevel(simkit::LogLevel::kError);
  EXPECT_EQ(simkit::GetLogLevel(), simkit::LogLevel::kError);
  SIMKIT_LOG(simkit::LogLevel::kDebug) << "should not crash nor print";
  simkit::SetLogLevel(simkit::LogLevel::kWarning);
}

}  // namespace
