// The paper's generality claims (Section 3.3.1): the correlation analysis and the selected
// thresholds "have little to do with the particular platform used", because the chosen events
// are kernel-level scheduling/memory signals. These suites re-run training and end-to-end
// detection on every modeled device profile.
#include <gtest/gtest.h>

#include "src/hangdoctor/correlation.h"
#include "src/hosts/hang_doctor.h"
#include "src/workload/catalog.h"
#include "src/workload/experiment.h"
#include "src/workload/fleet.h"
#include "src/workload/training.h"

namespace {

const workload::Catalog& SharedCatalog() {
  static const workload::Catalog* catalog = new workload::Catalog();
  return *catalog;
}

droidsim::DeviceProfile ProfileByName(const std::string& name) {
  if (name == "Nexus 5") {
    return droidsim::Nexus5();
  }
  if (name == "Galaxy S3") {
    return droidsim::GalaxyS3();
  }
  return droidsim::LgV10();
}

class DeviceGeneralityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DeviceGeneralityTest, ContextSwitchesLeadTheRankingOnEveryDevice) {
  workload::TrainingConfig config;
  config.profile = ProfileByName(GetParam());
  config.executions_per_op = 8;
  workload::TrainingData data = workload::CollectTrainingSamples(SharedCatalog(), config);
  ASSERT_GT(data.diff_samples.size(), 60u);
  std::vector<hangdoctor::RankedEvent> ranking = hangdoctor::RankEvents(data.diff_samples);
  // The paper's core generality observation: the top events are kernel software events, and
  // context-switches leads on every platform tested.
  EXPECT_EQ(ranking[0].event, telemetry::PerfEventType::kContextSwitches) << GetParam();
  EXPECT_GT(ranking[0].correlation, 0.5);
}

TEST_P(DeviceGeneralityTest, ProductionFilterKeepsAllTrainingBugsOnEveryDevice) {
  workload::TrainingConfig config;
  config.profile = ProfileByName(GetParam());
  config.executions_per_op = 8;
  workload::TrainingData data = workload::CollectTrainingSamples(SharedCatalog(), config);
  hangdoctor::FilterQuality quality = hangdoctor::EvaluateFilter(
      hangdoctor::SoftHangFilter::Default(), data.diff_samples);
  // The LG V10 thresholds transfer: high bug recall and real UI pruning on other devices.
  double recall = static_cast<double>(quality.true_positives) /
                  static_cast<double>(quality.true_positives + quality.false_negatives);
  EXPECT_GT(recall, 0.95) << GetParam();
  EXPECT_GT(quality.FalsePositivePruneRate(), 0.4) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Devices, DeviceGeneralityTest,
                         ::testing::Values("LG V10", "Nexus 5", "Galaxy S3"));

// The three devices' end-to-end runs are independent, so they run as one fleet: each job
// gets its own phone and Hang Doctor, and each per-device report must name the K9-Mail
// culprit regardless of which worker ran it.
TEST(DeviceGeneralityFleetTest, EndToEndDiagnosisWorksOnEveryDevice) {
  const workload::Catalog& catalog = SharedCatalog();
  const char* devices[] = {"LG V10", "Nexus 5", "Galaxy S3"};
  std::vector<workload::FleetJob> jobs;
  for (const char* name : devices) {
    workload::FleetJob job;
    job.spec = catalog.FindApp("K9-Mail");
    job.profile = ProfileByName(name);
    job.seed = 31337;
    job.session = simkit::Seconds(180);
    job.device_id = static_cast<int32_t>(jobs.size());
    jobs.push_back(job);
  }
  workload::FleetSummary summary = workload::RunFleet(jobs, {.jobs = 3});
  ASSERT_EQ(summary.failed, 0u);
  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(summary.jobs[i].ok) << devices[i] << ": " << summary.jobs[i].error;
    bool found_clean = false;
    for (const hangdoctor::BugReportEntry& entry : summary.jobs[i].report.SortedEntries()) {
      found_clean |= entry.api == "org.htmlcleaner.HtmlCleaner.clean";
    }
    EXPECT_TRUE(found_clean) << devices[i] << ": " << summary.jobs[i].report.Render(1);
  }
}

// PMU register pressure differs across devices (6 vs 4 registers): the all-events profiling
// session multiplexes more aggressively on the Nexus 5, but software events stay exact.
TEST(PmuGeneralityTest, FewerRegistersMeanLowerEnabledFraction) {
  droidsim::Phone v10(droidsim::LgV10(), 1);
  droidsim::Phone n5(droidsim::Nexus5(), 1);
  perfsim::PerfSession session_v10(&v10.counter_hub(), v10.profile().pmu, 2);
  perfsim::PerfSession session_n5(&n5.counter_hub(), n5.profile().pmu, 2);
  session_v10.AddAllEvents();
  session_n5.AddAllEvents();
  EXPECT_LT(session_n5.EnabledFraction(), session_v10.EnabledFraction());
}

}  // namespace
