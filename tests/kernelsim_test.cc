// Unit tests for the simulated kernel: scheduling, context-switch accounting, blocking I/O,
// sleep, memory management, background load.
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/kernelsim/background_load.h"
#include "src/kernelsim/io.h"
#include "src/kernelsim/kernel.h"
#include "src/kernelsim/memory.h"
#include "src/simkit/simulation.h"

namespace {

using kernelsim::BlockSegment;
using kernelsim::CpuSegment;
using kernelsim::ExitSegment;
using kernelsim::IoSegment;
using kernelsim::Kernel;
using kernelsim::KernelSpec;
using kernelsim::Segment;
using kernelsim::SleepSegment;
using kernelsim::ThreadState;
using kernelsim::WorkSource;

// A scripted work source: plays a fixed list of segments, then exits.
class ScriptSource : public WorkSource {
 public:
  explicit ScriptSource(std::vector<Segment> script) : script_(std::move(script)) {}
  Segment NextSegment() override {
    if (position_ >= script_.size()) {
      return ExitSegment{};
    }
    return script_[position_++];
  }
  size_t position() const { return position_; }

 private:
  std::vector<Segment> script_;
  size_t position_ = 0;
};

CpuSegment Cpu(simkit::SimDuration duration, double syscalls_per_ms = 0.0,
               int64_t alloc = 0) {
  CpuSegment segment;
  segment.duration = duration;
  segment.syscalls_per_ms = syscalls_per_ms;
  segment.alloc_bytes = alloc;
  return segment;
}

struct World {
  simkit::Simulation sim;
  std::optional<Kernel> kernel;

  explicit World(int32_t cpus = 4) {
    KernelSpec spec;
    spec.num_cpus = cpus;
    kernel.emplace(&sim, spec, /*seed=*/1);
  }
};

TEST(KernelTest, SingleThreadChargesExactCpuTime) {
  World world;
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({Cpu(simkit::Milliseconds(10))});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  world.sim.RunToCompletion();
  const kernelsim::Thread& thread = world.kernel->GetThread(tid);
  EXPECT_EQ(thread.stats.cpu_time, simkit::Milliseconds(10));
  EXPECT_EQ(thread.state, ThreadState::kExited);
}

TEST(KernelTest, CpuSegmentsRunBackToBackWithoutGaps) {
  World world(1);
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({Cpu(simkit::Milliseconds(3)), Cpu(simkit::Milliseconds(5))});
  world.kernel->SpawnThread(pid, "t", &source);
  simkit::SimTime end = world.sim.RunToCompletion();
  EXPECT_EQ(end, simkit::Milliseconds(8));
}

TEST(KernelTest, TwoHogsShareOneCpuFairly) {
  World world(1);
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource a({Cpu(simkit::Milliseconds(40))});
  ScriptSource b({Cpu(simkit::Milliseconds(40))});
  auto tid_a = world.kernel->SpawnThread(pid, "a", &a);
  auto tid_b = world.kernel->SpawnThread(pid, "b", &b);
  // Half way through, both threads should have had roughly equal CPU.
  world.sim.RunUntil(simkit::Milliseconds(40));
  simkit::SimDuration cpu_a = world.kernel->GetThread(tid_a).stats.cpu_time;
  simkit::SimDuration cpu_b = world.kernel->GetThread(tid_b).stats.cpu_time;
  EXPECT_NEAR(static_cast<double>(cpu_a), static_cast<double>(cpu_b),
              static_cast<double>(simkit::Milliseconds(4)));
  world.sim.RunToCompletion();
  EXPECT_EQ(world.kernel->GetThread(tid_a).stats.cpu_time, simkit::Milliseconds(40));
}

TEST(KernelTest, PreemptionCountsInvoluntarySwitches) {
  World world(1);
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource a({Cpu(simkit::Milliseconds(40))});
  ScriptSource b({Cpu(simkit::Milliseconds(40))});
  auto tid_a = world.kernel->SpawnThread(pid, "a", &a);
  world.kernel->SpawnThread(pid, "b", &b);
  world.sim.RunToCompletion();
  // 40 ms at a 4 ms timeslice against one competitor: several involuntary switches.
  EXPECT_GE(world.kernel->GetThread(tid_a).stats.involuntary_switches, 5);
}

TEST(KernelTest, LoneHogIsNotPreempted) {
  World world(4);
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({Cpu(simkit::Milliseconds(40))});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  world.sim.RunToCompletion();
  EXPECT_EQ(world.kernel->GetThread(tid).stats.involuntary_switches, 0);
}

TEST(KernelTest, MicroSyscallsCountAsVoluntarySwitches) {
  World world;
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({Cpu(simkit::Milliseconds(100), /*syscalls_per_ms=*/1.0)});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  world.sim.RunToCompletion();
  // ~100 yields plus the final exit switch.
  EXPECT_NEAR(static_cast<double>(world.kernel->GetThread(tid).stats.voluntary_switches),
              101.0, 3.0);
}

TEST(KernelTest, BlockingIoBlocksAndWakes) {
  World world;
  kernelsim::IoDeviceSpec device_spec;
  device_spec.name = "disk";
  device_spec.base_latency = simkit::Milliseconds(5);
  device_spec.bandwidth_bytes_per_sec = 0.0;
  device_spec.jitter_sigma = 0.0;
  auto device = world.kernel->AddDevice(device_spec);
  IoSegment io;
  io.device = device;
  io.rounds = 1;
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({io, Cpu(simkit::Milliseconds(1))});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  world.sim.RunUntil(simkit::Milliseconds(2));
  EXPECT_EQ(world.kernel->GetThread(tid).state, ThreadState::kBlocked);
  simkit::SimTime end = world.sim.RunToCompletion();
  EXPECT_GE(end, simkit::Milliseconds(6));
  EXPECT_EQ(world.kernel->GetThread(tid).stats.cpu_time, simkit::Milliseconds(1));
}

TEST(KernelTest, IoRoundsCountVoluntarySwitches) {
  World world;
  kernelsim::IoDeviceSpec device_spec;
  device_spec.base_latency = simkit::Milliseconds(1);
  device_spec.jitter_sigma = 0.0;
  auto device = world.kernel->AddDevice(device_spec);
  IoSegment io;
  io.device = device;
  io.rounds = 10;
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({io});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  world.sim.RunToCompletion();
  // One switch per round (9 extra + the initial block) + exit.
  EXPECT_GE(world.kernel->GetThread(tid).stats.voluntary_switches, 10);
}

TEST(KernelTest, SleepWakesAfterDuration) {
  World world;
  auto pid = world.kernel->CreateProcess("p");
  SleepSegment sleep;
  sleep.duration = simkit::Milliseconds(7);
  ScriptSource source({sleep, Cpu(simkit::Milliseconds(1))});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  world.sim.RunUntil(simkit::Milliseconds(3));
  EXPECT_EQ(world.kernel->GetThread(tid).state, ThreadState::kSleeping);
  simkit::SimTime end = world.sim.RunToCompletion();
  EXPECT_EQ(end, simkit::Milliseconds(8));
}

TEST(KernelTest, BlockSegmentWaitsForWake) {
  World world;
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({BlockSegment{}, Cpu(simkit::Milliseconds(2))});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  world.sim.RunUntil(simkit::Milliseconds(10));
  EXPECT_EQ(world.kernel->GetThread(tid).state, ThreadState::kBlocked);
  world.kernel->Wake(tid);
  world.sim.RunToCompletion();
  EXPECT_EQ(world.kernel->GetThread(tid).stats.cpu_time, simkit::Milliseconds(2));
}

TEST(KernelTest, WakeBeforeBlockIsNotLost) {
  World world;
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({Cpu(simkit::Milliseconds(5)), BlockSegment{}, Cpu(simkit::Milliseconds(1))});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  // Wake arrives while the thread is still running its first segment.
  world.sim.RunUntil(simkit::Milliseconds(1));
  world.kernel->Wake(tid);
  world.sim.RunToCompletion();
  EXPECT_EQ(world.kernel->GetThread(tid).state, ThreadState::kExited);
  EXPECT_EQ(world.kernel->GetThread(tid).stats.cpu_time, simkit::Milliseconds(6));
}

TEST(KernelTest, AllocationsFaultOncePerPage) {
  World world;
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({Cpu(simkit::Milliseconds(10), 0.0, /*alloc=*/40 * kernelsim::kPageSize)});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  world.sim.RunToCompletion();
  EXPECT_NEAR(static_cast<double>(world.kernel->GetThread(tid).stats.minor_faults), 40.0, 2.0);
}

TEST(KernelTest, SinkReceivesCharges) {
  class CountingSink : public kernelsim::KernelEventSink {
   public:
    void OnCpuCharge(const kernelsim::Thread&, simkit::SimDuration run,
                     const kernelsim::MicroArchProfile&) override {
      cpu += run;
    }
    void OnContextSwitch(const kernelsim::Thread&, bool, int64_t count) override {
      switches += count;
    }
    void OnPageFault(const kernelsim::Thread&, bool, int64_t count) override { faults += count; }
    void OnCpuMigration(const kernelsim::Thread&) override { ++migrations; }
    simkit::SimDuration cpu = 0;
    int64_t switches = 0;
    int64_t faults = 0;
    int64_t migrations = 0;
  };
  World world;
  CountingSink sink;
  world.kernel->AddSink(&sink);
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({Cpu(simkit::Milliseconds(8), 1.0, 10 * kernelsim::kPageSize)});
  world.kernel->SpawnThread(pid, "t", &source);
  world.sim.RunToCompletion();
  EXPECT_EQ(sink.cpu, simkit::Milliseconds(8));
  EXPECT_GT(sink.switches, 0);
  EXPECT_GT(sink.faults, 0);
  world.kernel->RemoveSink(&sink);
}

TEST(KernelTest, TotalContextSwitchesAggregates) {
  World world(1);
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource a({Cpu(simkit::Milliseconds(20))});
  ScriptSource b({Cpu(simkit::Milliseconds(20))});
  world.kernel->SpawnThread(pid, "a", &a);
  world.kernel->SpawnThread(pid, "b", &b);
  world.sim.RunToCompletion();
  EXPECT_GT(world.kernel->total_context_switches(), 4);
}

TEST(IoDeviceTest, BandwidthAddsServiceTime) {
  simkit::Simulation sim;
  kernelsim::IoDeviceSpec spec;
  spec.base_latency = simkit::Milliseconds(1);
  spec.bandwidth_bytes_per_sec = 1024.0 * 1024.0;  // 1 MiB/s
  spec.jitter_sigma = 0.0;
  kernelsim::IoDevice device(&sim, 0, spec, simkit::Rng(1, 1));
  simkit::SimDuration observed = 0;
  kernelsim::IoRequest request;
  request.bytes = 512 * 1024;  // half a second at 1 MiB/s
  device.Submit(request, [&](const kernelsim::IoCompletion& done) {
    observed = done.service_time;
  });
  sim.RunToCompletion();
  EXPECT_NEAR(simkit::ToMilliseconds(observed), 501.0, 5.0);
}

TEST(IoDeviceTest, SingleChannelQueuesRequests) {
  simkit::Simulation sim;
  kernelsim::IoDeviceSpec spec;
  spec.base_latency = simkit::Milliseconds(10);
  spec.bandwidth_bytes_per_sec = 0.0;
  spec.jitter_sigma = 0.0;
  spec.channels = 1;
  kernelsim::IoDevice device(&sim, 0, spec, simkit::Rng(1, 1));
  std::vector<simkit::SimTime> completions;
  for (int i = 0; i < 2; ++i) {
    device.Submit(kernelsim::IoRequest{}, [&](const kernelsim::IoCompletion&) {
      completions.push_back(sim.Now());
    });
  }
  sim.RunToCompletion();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], simkit::Milliseconds(10));
  EXPECT_EQ(completions[1], simkit::Milliseconds(20));
}

TEST(IoDeviceTest, CachedRequestsAreFastAndFaultless) {
  simkit::Simulation sim;
  kernelsim::IoDeviceSpec spec;
  spec.base_latency = simkit::Milliseconds(10);
  kernelsim::IoDevice device(&sim, 0, spec, simkit::Rng(1, 1));
  kernelsim::IoRequest request;
  request.bytes = 256 * 1024;
  request.cached = true;
  simkit::SimDuration service = 0;
  int64_t faults = -1;
  device.Submit(request, [&](const kernelsim::IoCompletion& done) {
    service = done.service_time;
    faults = done.major_faults;
  });
  sim.RunToCompletion();
  EXPECT_LT(service, simkit::Milliseconds(1));
  EXPECT_EQ(faults, 0);
}

TEST(MemoryManagerTest, AllocFaultsPerPage) {
  kernelsim::MemorySpec spec;
  kernelsim::MemoryManager memory(spec, simkit::Rng(1, 1));
  memory.CreateAddressSpace(1);
  EXPECT_EQ(memory.Alloc(1, 10 * kernelsim::kPageSize, 0), 10);
  EXPECT_EQ(memory.ResidentPages(1), 10);
  EXPECT_EQ(memory.Alloc(1, 0, 0), 0);
}

TEST(MemoryManagerTest, TouchOnResidentSetIsFree) {
  kernelsim::MemorySpec spec;
  kernelsim::MemoryManager memory(spec, simkit::Rng(1, 1));
  memory.CreateAddressSpace(1);
  memory.Alloc(1, 100 * kernelsim::kPageSize, 0);
  EXPECT_EQ(memory.Touch(1, 50 * kernelsim::kPageSize, 1), 0);
}

TEST(MemoryManagerTest, PressureEvictsAndCausesRefaults) {
  kernelsim::MemorySpec spec;
  spec.total_pages = 100;
  kernelsim::MemoryManager memory(spec, simkit::Rng(1, 1));
  memory.CreateAddressSpace(1);
  memory.CreateAddressSpace(2);
  memory.Alloc(1, 90 * kernelsim::kPageSize, 0);
  memory.Alloc(2, 90 * kernelsim::kPageSize, 1);  // forces reclaim of space 1
  EXPECT_LE(memory.TotalResidentPages(), 100);
  // Space 1 lost residency; touching its working set refaults.
  EXPECT_GT(memory.Touch(1, 90 * kernelsim::kPageSize, 2), 0);
}

TEST(MemoryManagerTest, DestroyReleasesPages) {
  kernelsim::MemorySpec spec;
  kernelsim::MemoryManager memory(spec, simkit::Rng(1, 1));
  memory.CreateAddressSpace(1);
  memory.Alloc(1, 10 * kernelsim::kPageSize, 0);
  memory.DestroyAddressSpace(1);
  EXPECT_EQ(memory.TotalResidentPages(), 0);
}

TEST(BackgroundLoadTest, ThreadsConsumeCpuOverTime) {
  World world;
  kernelsim::BackgroundLoadSpec spec;
  spec.num_threads = 2;
  kernelsim::BackgroundLoad load(&world.kernel.value(), spec, simkit::Rng(3, 3));
  world.sim.RunUntil(simkit::Seconds(1));
  simkit::SimDuration total = 0;
  for (kernelsim::ThreadId tid : load.thread_ids()) {
    total += world.kernel->GetThread(tid).stats.cpu_time;
  }
  EXPECT_GT(total, simkit::Milliseconds(100));
  EXPECT_LT(total, simkit::Seconds(2));
}

}  // namespace
