// Tests for the workload layer: catalog invariants against Tables 1/5/6, ground truth
// labeling and calibration, the user model, scoring, and the training harness.
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/workload/catalog.h"
#include "src/workload/experiment.h"
#include "src/workload/ground_truth.h"
#include "src/workload/training.h"
#include "src/workload/user_model.h"

namespace {

// One catalog for the whole binary: construction walks three builder translation units.
const workload::Catalog& SharedCatalog() {
  static const workload::Catalog* catalog = new workload::Catalog();
  return *catalog;
}

TEST(CatalogTest, CorpusMatchesPaperCounts) {
  const workload::Catalog& catalog = SharedCatalog();
  EXPECT_EQ(catalog.all_apps().size(), 114u);     // "tested about 114 apps"
  EXPECT_EQ(catalog.study_apps().size(), 16u);    // Table 5 rows
  EXPECT_EQ(catalog.motivation_apps().size(), 8u);  // Table 1 rows
  EXPECT_EQ(catalog.study_bugs().size(), 34u);    // Table 5 total BD
  EXPECT_EQ(catalog.motivation_bugs().size(), 19u);  // Table 2's 19 bugs
  int64_t missed_offline = 0;
  for (const workload::BugSpec& bug : catalog.study_bugs()) {
    missed_offline += bug.missed_offline ? 1 : 0;
  }
  EXPECT_EQ(missed_offline, 23);  // Table 5 total MO
}

TEST(CatalogTest, PerAppBugCountsMatchTable5) {
  const workload::Catalog& catalog = SharedCatalog();
  const std::map<std::string, std::pair<int, int>> expected = {
      {"AndStatus", {3, 2}},    {"DashClock", {1, 0}},     {"CycleStreets", {4, 3}},
      {"K9-Mail", {2, 2}},      {"Omni-Notes", {3, 3}},    {"OwnTracks", {1, 0}},
      {"QKSMS", {3, 3}},        {"StickerCamera", {3, 0}}, {"AntennaPod", {3, 2}},
      {"Merchant", {1, 1}},     {"UOITDC Booking", {2, 2}}, {"SageMath", {3, 2}},
      {"RadioDroid", {2, 1}},   {"GIT@OSC", {1, 1}},       {"Lens-Launcher", {1, 0}},
      {"SkyTube", {1, 1}},
  };
  for (const auto& [app, counts] : expected) {
    std::vector<workload::BugSpec> bugs = catalog.BugsOf(app);
    int missed = 0;
    for (const workload::BugSpec& bug : bugs) {
      missed += bug.missed_offline ? 1 : 0;
    }
    EXPECT_EQ(static_cast<int>(bugs.size()), counts.first) << app;
    EXPECT_EQ(missed, counts.second) << app;
  }
}

TEST(CatalogTest, BugApisResolveInRegistry) {
  const workload::Catalog& catalog = SharedCatalog();
  for (const workload::BugSpec& bug : catalog.study_bugs()) {
    EXPECT_NE(catalog.apis().Find(bug.api), nullptr) << bug.api;
  }
}

TEST(CatalogTest, KnownDatabaseMatchesBugFlags) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase database = catalog.MakeKnownDatabase();
  for (const workload::BugSpec& bug : catalog.study_bugs()) {
    if (bug.self_developed) {
      EXPECT_FALSE(database.IsKnown(bug.api)) << bug.api;
      continue;
    }
    EXPECT_EQ(database.IsKnown(bug.api), bug.known_blocking) << bug.api;
  }
}

TEST(CatalogTest, FindAppByName) {
  const workload::Catalog& catalog = SharedCatalog();
  ASSERT_NE(catalog.FindApp("K9-Mail"), nullptr);
  EXPECT_EQ(catalog.FindApp("K9-Mail")->package, "com.fsck.k9");
  EXPECT_EQ(catalog.FindApp("NoSuchApp"), nullptr);
}

TEST(CatalogTest, FillerAppsAreBugFree) {
  const workload::Catalog& catalog = SharedCatalog();
  for (const droidsim::AppSpec* spec : catalog.filler_apps()) {
    for (const droidsim::ActionSpec& action : spec->actions) {
      for (const droidsim::InputEventSpec& event : action.events) {
        for (const droidsim::OpNode& node : event.ops) {
          // Filler ops are UI or light helpers; none has a >100 ms worst case alone that
          // would constitute a designed-in bug.
          EXPECT_TRUE(node.api->kind == droidsim::ApiKind::kUi ||
                      node.api->cost.cpu_mean < simkit::Milliseconds(20));
        }
      }
    }
  }
}

TEST(CatalogTest, EveryActionHasAtLeastOneEvent) {
  const workload::Catalog& catalog = SharedCatalog();
  for (const droidsim::AppSpec* spec : catalog.all_apps()) {
    EXPECT_FALSE(spec->actions.empty()) << spec->name;
    for (const droidsim::ActionSpec& action : spec->actions) {
      EXPECT_FALSE(action.events.empty()) << spec->name << "/" << action.name;
      EXPECT_GT(action.weight, 0.0);
    }
  }
}

TEST(GroundTruthTest, LabelsBugAndUiHangs) {
  const workload::Catalog& catalog = SharedCatalog();
  workload::SingleAppHarness harness(droidsim::LgV10(), catalog.FindApp("K9-Mail"), 50);
  harness.RunUserSession(simkit::Seconds(120));
  const workload::GroundTruthRecorder& truth = harness.truth();
  EXPECT_GT(truth.labels().size(), 10u);
  bool saw_bug = false;
  bool saw_ui = false;
  for (const workload::HangLabel& label : truth.labels()) {
    if (!label.hang) {
      continue;
    }
    if (label.cause_is_bug) {
      saw_bug = true;
      EXPECT_FALSE(label.cause_api.empty());
    } else {
      saw_ui = true;
    }
  }
  EXPECT_TRUE(saw_bug);
  EXPECT_TRUE(saw_ui);
  EXPECT_GT(truth.bug_hangs(), 0);
}

TEST(GroundTruthTest, CalibrationOrdersThresholds) {
  const workload::Catalog& catalog = SharedCatalog();
  workload::CalibratedThresholds thresholds = workload::CalibrateUtilization(
      droidsim::LgV10(), catalog.FindApp("UOITDC Booking"), 51, simkit::Seconds(120));
  EXPECT_GT(thresholds.high.cpu_fraction, thresholds.low.cpu_fraction);
  EXPECT_GT(thresholds.high.mem_bytes_per_sec, thresholds.low.mem_bytes_per_sec);
  EXPECT_GT(thresholds.low.cpu_fraction, 0.0);
}

TEST(UserModelTest, StochasticSessionPerformsWeightedActions) {
  const workload::Catalog& catalog = SharedCatalog();
  droidsim::Phone phone(droidsim::LgV10(), 52);
  droidsim::App* app = phone.InstallApp(catalog.FindApp("DashClock"));
  workload::UserSession user(&phone, app, phone.ForkRng(1));
  phone.RunFor(simkit::Seconds(60));
  EXPECT_GT(user.actions_performed(), 10);
}

TEST(UserModelTest, ScriptReplaysExactly) {
  const workload::Catalog& catalog = SharedCatalog();
  droidsim::Phone phone(droidsim::LgV10(), 53);
  droidsim::App* app = phone.InstallApp(catalog.FindApp("DashClock"));
  std::vector<int32_t> order;
  app->main_looper().AddMessageLogger([&](bool begin, const droidsim::Message& message) {
    if (begin && message.event != nullptr) {
      order.push_back(message.action_uid);
    }
  });
  workload::UserSessionConfig config;
  config.mean_think = simkit::Seconds(2);
  config.min_think = simkit::Seconds(2);
  workload::UserSession user(&phone, app, std::vector<int32_t>{1, 0, 1}, config);
  phone.RunFor(simkit::Seconds(20));
  EXPECT_EQ(order, (std::vector<int32_t>{1, 0, 1}));
  EXPECT_EQ(user.actions_performed(), 3);
}

TEST(UserModelTest, MaxActionsLimits) {
  const workload::Catalog& catalog = SharedCatalog();
  droidsim::Phone phone(droidsim::LgV10(), 54);
  droidsim::App* app = phone.InstallApp(catalog.FindApp("DashClock"));
  workload::UserSessionConfig config;
  config.max_actions = 3;
  workload::UserSession user(&phone, app, phone.ForkRng(2), config);
  phone.RunFor(simkit::Seconds(120));
  EXPECT_EQ(user.actions_performed(), 3);
}

TEST(ScoringTest, DetectionStatsArithmetic) {
  // Synthetic truth with known outcomes, scored through the public API.
  const workload::Catalog& catalog = SharedCatalog();
  workload::SingleAppHarness harness(droidsim::LgV10(), catalog.FindApp("DashClock"), 55);
  harness.RunUserSession(simkit::Seconds(90));
  // A "detector" that traced everything vs one that traced nothing.
  std::vector<baselines::DetectionOutcome> all;
  std::vector<baselines::DetectionOutcome> none;
  for (const workload::HangLabel& label : harness.truth().labels()) {
    baselines::DetectionOutcome outcome;
    outcome.execution_id = label.execution_id;
    outcome.traced = true;
    all.push_back(outcome);
    outcome.traced = false;
    none.push_back(outcome);
  }
  workload::DetectionStats all_stats = workload::ScoreDetector(harness.truth(), all);
  workload::DetectionStats none_stats = workload::ScoreDetector(harness.truth(), none);
  EXPECT_EQ(all_stats.false_negatives, 0);
  EXPECT_EQ(all_stats.true_positives, all_stats.bug_hangs);
  EXPECT_EQ(all_stats.false_positives, all_stats.ui_hangs);
  EXPECT_EQ(none_stats.true_positives, 0);
  EXPECT_EQ(none_stats.false_negatives, none_stats.bug_hangs);
  // Spurious detections land in FP.
  workload::DetectionStats spurious =
      workload::ScoreDetector(harness.truth(), none, /*spurious_detections=*/7);
  EXPECT_EQ(spurious.false_positives, 7);
}

TEST(TrainingTest, TrainingSamplesCoverBothClasses) {
  const workload::Catalog& catalog = SharedCatalog();
  workload::TrainingConfig config;
  config.executions_per_op = 4;
  workload::TrainingData data = workload::CollectTrainingSamples(catalog, config);
  EXPECT_EQ(data.diff_samples.size(), data.main_only_samples.size());
  EXPECT_GT(data.diff_samples.size(), 40u);
  int64_t bugs = 0;
  std::set<std::string> sources;
  for (const hangdoctor::LabeledSample& sample : data.diff_samples) {
    bugs += sample.is_bug ? 1 : 0;
    sources.insert(sample.source);
  }
  EXPECT_GT(bugs, 20);
  EXPECT_GT(static_cast<int64_t>(data.diff_samples.size()) - bugs, 20);
  // 10 bug APIs + 11 UI APIs in the training set.
  EXPECT_EQ(sources.size(), 21u);
}

TEST(TrainingTest, ValidationSamplesOnlyUnknownBugs) {
  const workload::Catalog& catalog = SharedCatalog();
  workload::TrainingConfig config;
  config.executions_per_op = 3;
  workload::TrainingData data = workload::CollectValidationSamples(catalog, config);
  EXPECT_FALSE(data.diff_samples.empty());
  for (const hangdoctor::LabeledSample& sample : data.diff_samples) {
    EXPECT_TRUE(sample.is_bug);
    EXPECT_NE(sample.source.find('@'), std::string::npos);
  }
}

TEST(AppUsageTest, SumsAppThreads) {
  const workload::Catalog& catalog = SharedCatalog();
  workload::SingleAppHarness harness(droidsim::LgV10(), catalog.FindApp("K9-Mail"), 56);
  harness.RunUserSession(simkit::Seconds(60));
  workload::TraceUsage usage = harness.Usage();
  EXPECT_GT(usage.cpu, simkit::Milliseconds(100));
  EXPECT_GT(usage.bytes, 1024);
}

}  // namespace
