// KnowledgeBase unit tests: the epoch-publication protocol in isolation. Snapshot acquire /
// immutability, the deterministic (session id, discovery order) merge, memo first-wins, the
// overlay database semantics snapshots rest on, and the memo key's injectivity.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/hangdoctor/blocking_api_db.h"
#include "src/hangdoctor/knowledge_base.h"
#include "src/telemetry/stack.h"
#include "src/telemetry/symbols.h"

namespace {

hangdoctor::BlockingApiDatabase SeedDb() {
  hangdoctor::BlockingApiDatabase seed;
  seed.SeedKnown("android.hardware.Camera.open");
  seed.SeedKnown("android.graphics.BitmapFactory.decodeStream");
  return seed;
}

hangdoctor::DiagnosisMemoEntry MemoEntry(const std::string& key_package,
                                         const std::string& culprit_function) {
  hangdoctor::DiagnosisMemoEntry entry;
  entry.key.app_package = key_package;
  entry.key.symbols_fingerprint = 0x1234;
  entry.key.shape = {1, 7};
  entry.diagnosis.valid = true;
  entry.diagnosis.culprit.function = culprit_function;
  entry.diagnosis.culprit.clazz = "com.example.Worker";
  return entry;
}

TEST(KnowledgeBaseTest, SeedIsVisibleFromTheFirstSnapshot) {
  hangdoctor::KnowledgeBase kb(SeedDb());
  hangdoctor::KnowledgeBase::Snapshot snap = kb.Acquire();
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.epoch(), 0u);
  EXPECT_TRUE(snap.IsKnown("android.hardware.Camera.open"));
  EXPECT_FALSE(snap.IsKnown("com.example.Worker.block"));
  EXPECT_EQ(snap.discovered_size(), 0u);
  EXPECT_EQ(snap.memo_size(), 0u);
  // A default-constructed snapshot is the "no knowledge base" state.
  EXPECT_FALSE(hangdoctor::KnowledgeBase::Snapshot{}.valid());
}

TEST(KnowledgeBaseTest, OverlayDatabaseIsBitEquivalentToAPrivateCopy) {
  hangdoctor::BlockingApiDatabase seed = SeedDb();
  hangdoctor::BlockingApiDatabase overlay;
  overlay.SetBase(&seed);
  EXPECT_TRUE(overlay.IsKnown("android.hardware.Camera.open"));
  EXPECT_EQ(overlay.size(), seed.size());
  // A base-known API is never a discovery; a new one is a discovery exactly once.
  EXPECT_FALSE(overlay.AddDiscovered("android.hardware.Camera.open"));
  EXPECT_TRUE(overlay.AddDiscovered("com.example.Worker.block"));
  EXPECT_FALSE(overlay.AddDiscovered("com.example.Worker.block"));
  EXPECT_TRUE(overlay.IsKnown("com.example.Worker.block"));
  EXPECT_EQ(overlay.size(), seed.size() + 1);
  ASSERT_EQ(overlay.discovered().size(), 1u);
  EXPECT_EQ(overlay.discovered()[0], "com.example.Worker.block");
  // The base never mutates.
  EXPECT_FALSE(seed.IsKnown("com.example.Worker.block"));
}

TEST(KnowledgeBaseTest, PublishMergesAndOldSnapshotsStayImmutable) {
  hangdoctor::KnowledgeBase kb(SeedDb());
  hangdoctor::KnowledgeBase::Snapshot before = kb.Acquire();

  kb.AbsorbSession(telemetry::SessionId{3}, {"com.example.Worker.block"},
                   {MemoEntry("com.example.app", "block")}, {});
  // Nothing is visible until the epoch boundary.
  EXPECT_EQ(kb.Acquire().epoch(), 0u);
  EXPECT_FALSE(kb.Acquire().IsKnown("com.example.Worker.block"));

  EXPECT_TRUE(kb.Publish());
  hangdoctor::KnowledgeBase::Snapshot after = kb.Acquire();
  EXPECT_EQ(after.epoch(), 1u);
  EXPECT_TRUE(after.IsKnown("com.example.Worker.block"));
  EXPECT_TRUE(after.IsKnown("android.hardware.Camera.open"));  // seed still overlaid
  EXPECT_EQ(after.discovered_size(), 1u);
  EXPECT_EQ(after.memo_size(), 1u);

  // The pre-publish snapshot is frozen: RCU readers never see in-place mutation.
  EXPECT_EQ(before.epoch(), 0u);
  EXPECT_FALSE(before.IsKnown("com.example.Worker.block"));
  EXPECT_EQ(before.memo_size(), 0u);

  // An empty epoch is a no-op, not a new version.
  EXPECT_FALSE(kb.Publish());
  EXPECT_EQ(kb.Acquire().epoch(), 1u);
}

TEST(KnowledgeBaseTest, MergeOrderIsSessionThenDiscoveryOrderNotArrivalOrder) {
  // Two sessions race the same memo key with different diagnoses (impossible with the pure
  // analyzer, but exactly what the determinism contract must pin down): the merged value is
  // the lowest (session id, order) writer's, no matter which AbsorbSession ran first.
  hangdoctor::DiagnosisMemoEntry late = MemoEntry("com.example.app", "from_session_9");
  hangdoctor::DiagnosisMemoEntry early = MemoEntry("com.example.app", "from_session_2");
  ASSERT_TRUE(late.key == early.key);

  hangdoctor::KnowledgeBase kb;
  kb.AbsorbSession(telemetry::SessionId{9}, {}, {late}, {});
  kb.AbsorbSession(telemetry::SessionId{2}, {}, {early}, {});
  ASSERT_TRUE(kb.Publish());

  hangdoctor::KnowledgeBase::Snapshot snap = kb.Acquire();
  const hangdoctor::Diagnosis* memo = snap.FindMemo(early.key);
  ASSERT_NE(memo, nullptr);
  EXPECT_EQ(memo->culprit.function, "from_session_2");

  // Same race, arrival order flipped: identical winner.
  hangdoctor::KnowledgeBase flipped;
  flipped.AbsorbSession(telemetry::SessionId{2}, {}, {early}, {});
  flipped.AbsorbSession(telemetry::SessionId{9}, {}, {late}, {});
  ASSERT_TRUE(flipped.Publish());
  const hangdoctor::Diagnosis* flipped_memo = flipped.Acquire().FindMemo(early.key);
  ASSERT_NE(flipped_memo, nullptr);
  EXPECT_EQ(flipped_memo->culprit.function, "from_session_2");
}

TEST(KnowledgeBaseTest, StatsAccumulateAcrossAbsorbAndPublish) {
  hangdoctor::KnowledgeBase kb(SeedDb());
  hangdoctor::KbSessionStats session_stats;
  session_stats.memo_hits = 3;
  session_stats.memo_misses = 1;
  session_stats.known_hits = 2;
  kb.AbsorbSession(telemetry::SessionId{1}, {"com.example.A.x"},
                   {MemoEntry("com.example.app", "x")}, session_stats);
  kb.AbsorbSession(telemetry::SessionId{2}, {"com.example.B.y"}, {}, session_stats);
  kb.Publish();

  hangdoctor::KnowledgeBase::Stats stats = kb.TotalStats();
  EXPECT_EQ(stats.sessions_absorbed, 2);
  EXPECT_EQ(stats.publishes, 1);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.memo_hits, 6);
  EXPECT_EQ(stats.memo_misses, 2);
  EXPECT_EQ(stats.known_hits, 4);
  EXPECT_EQ(stats.discovered, 2u);
  EXPECT_EQ(stats.memo_entries, 1u);
}

// Four plain frames (ids 0..3), none UI, lines 10*i.
void FillTable(telemetry::SymbolTable& table) {
  for (int i = 0; i < 4; ++i) {
    telemetry::StackFrame frame;
    frame.function = "f" + std::to_string(i);
    frame.clazz = "com.example.C" + std::to_string(i);
    frame.file = "C.java";
    frame.line = 10 * i;
    table.Intern(frame, /*is_ui=*/false);
  }
}

TEST(KnowledgeBaseTest, MemoKeyShapeFlatteningIsInjective) {
  // Traces [[1,2],[3]] and [[1],[2,3]] carry the same frame multiset; the per-trace
  // (depth, frames...) flattening must still tell them apart.
  telemetry::StackTrace a1;
  a1.frames = {1, 2};
  telemetry::StackTrace a2;
  a2.frames = {3};
  telemetry::StackTrace b1;
  b1.frames = {1};
  telemetry::StackTrace b2;
  b2.frames = {2, 3};
  hangdoctor::TraceAnalyzerConfig config;
  telemetry::SymbolTable symbols;
  FillTable(symbols);
  std::vector<telemetry::StackTrace> set_a = {a1, a2};
  std::vector<telemetry::StackTrace> set_b = {b1, b2};
  hangdoctor::DiagnosisMemoKey key_a =
      hangdoctor::MakeDiagnosisMemoKey(set_a, symbols, "com.example.app", config);
  hangdoctor::DiagnosisMemoKey key_b =
      hangdoctor::MakeDiagnosisMemoKey(set_b, symbols, "com.example.app", config);
  EXPECT_FALSE(key_a == key_b);
  // Same distinct-id set {1,2,3} over the same table: the fingerprints agree — only the
  // shape separates the keys, exactly as intended.
  EXPECT_EQ(key_a.symbols_fingerprint, key_b.symbols_fingerprint);

  // Every key dimension participates: package and analyzer thresholds too.
  hangdoctor::DiagnosisMemoKey other_package =
      hangdoctor::MakeDiagnosisMemoKey(set_a, symbols, "com.example.other", config);
  EXPECT_FALSE(key_a == other_package);
  hangdoctor::TraceAnalyzerConfig tweaked = config;
  tweaked.api_occurrence_threshold += 0.125;
  hangdoctor::DiagnosisMemoKey other_config =
      hangdoctor::MakeDiagnosisMemoKey(set_a, symbols, "com.example.app", tweaked);
  EXPECT_FALSE(key_a == other_config);

  hangdoctor::DiagnosisMemoKey same =
      hangdoctor::MakeDiagnosisMemoKey(set_a, symbols, "com.example.app", config);
  EXPECT_TRUE(key_a == same);
  EXPECT_EQ(key_a.Hash(), same.Hash());
}

TEST(KnowledgeBaseTest, FingerprintIsWholeTableContentIdentity) {
  // The key's fingerprint is the table's size plus its incremental content hash: two
  // sessions share memos exactly when their tables interned identical frame sequences.
  // Any content difference — even in a frame the traces never name — separates the keys.
  // That is conservative (Analyze could not observe the untraced frame) but never wrong:
  // equal keys still imply equal Analyze output, and the cost is only an extra miss.
  hangdoctor::TraceAnalyzerConfig config;
  telemetry::StackTrace trace;
  trace.frames = {0, 1};
  std::vector<telemetry::StackTrace> traces = {trace};

  auto key_for = [&](bool frame1_ui, int32_t frame1_line, int32_t frame3_line,
                     int extra_frames) {
    telemetry::SymbolTable table;
    for (int i = 0; i < 4 + extra_frames; ++i) {
      telemetry::StackFrame frame;
      frame.function = "f" + std::to_string(i);
      frame.clazz = "com.example.C" + std::to_string(i);
      frame.file = "C.java";
      frame.line = i == 1 ? frame1_line : i == 3 ? frame3_line : 10 * i;
      table.Intern(frame, /*is_ui=*/i == 1 && frame1_ui);
    }
    return hangdoctor::MakeDiagnosisMemoKey(traces, table, "com.example.app", config);
  };
  // Independently interned but content-identical tables agree: cross-session memo sharing
  // (the whole point of the shared KB) works without pointer identity.
  hangdoctor::DiagnosisMemoKey base = key_for(true, 120, 30, 0);
  EXPECT_TRUE(base == key_for(true, 120, 30, 0));
  // Frame content and UI classification are analyzer inputs: part of the identity.
  EXPECT_FALSE(base == key_for(false, 120, 30, 0));
  EXPECT_FALSE(base == key_for(true, 121, 30, 0));
  // Frame 3 is outside every trace, but the whole-table hash pins it anyway: a miss, by
  // design, rather than per-diagnosis string hashing to prove it could not matter.
  EXPECT_FALSE(base == key_for(true, 120, 31, 0));
  // Table size separates too (it decides out-of-range-id discards).
  EXPECT_FALSE(base == key_for(true, 120, 30, 1));

  // An id past the end of the table never dereferences it; the key is still well-formed and
  // reproducible.
  telemetry::StackTrace wild;
  wild.frames = {1, 99};
  traces = {wild};
  hangdoctor::DiagnosisMemoKey wild_key = key_for(true, 120, 30, 0);
  EXPECT_TRUE(wild_key == key_for(true, 120, 30, 0));
  EXPECT_FALSE(wild_key == base);  // different shape
}

}  // namespace
