// DetectorService equivalence tests. The tentpole contract: a fleet run through one
// session-multiplexed DetectorService produces results bit-identical to the per-job oracle
// path (one private DetectorCore per job) — for every study app, at any shard count, at any
// worker count. Plus direct service-surface tests: session lifecycle errors, Discard,
// live-session accounting, and the ascending-id merge order.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/hangdoctor/detector_service.h"
#include "src/hosts/hang_doctor.h"
#include "src/workload/catalog.h"
#include "src/workload/experiment.h"
#include "src/workload/fleet.h"

namespace {

const workload::Catalog& SharedCatalog() {
  static const workload::Catalog* catalog = new workload::Catalog();
  return *catalog;
}

// One job per study app — all 16 — on one device each.
std::vector<workload::FleetJob> StudyFleet(const hangdoctor::BlockingApiDatabase* known_db) {
  const workload::Catalog& catalog = SharedCatalog();
  std::vector<workload::FleetJob> jobs;
  for (const droidsim::AppSpec* spec : catalog.study_apps()) {
    workload::FleetJob job;
    job.spec = spec;
    job.profile = droidsim::LgV10();
    job.seed = workload::FleetSeed(4242, jobs.size());
    job.session = simkit::Seconds(30);
    job.device_id = static_cast<int32_t>(jobs.size() % 4);
    job.known_db = known_db;
    jobs.push_back(job);
  }
  return jobs;
}

void ExpectStatsEqual(const workload::DetectionStats& a, const workload::DetectionStats& b,
                      const std::string& label) {
  EXPECT_EQ(a.true_positives, b.true_positives) << label;
  EXPECT_EQ(a.false_positives, b.false_positives) << label;
  EXPECT_EQ(a.false_negatives, b.false_negatives) << label;
  EXPECT_EQ(a.bug_hangs, b.bug_hangs) << label;
  EXPECT_EQ(a.ui_hangs, b.ui_hangs) << label;
  EXPECT_DOUBLE_EQ(a.overhead_pct, b.overhead_pct) << label;
}

// Full bit-for-bit comparison of a service-mode summary against the oracle summary.
void ExpectSummariesEqual(const workload::FleetSummary& oracle,
                          const workload::FleetSummary& service, const std::string& label) {
  ASSERT_EQ(oracle.jobs.size(), service.jobs.size()) << label;
  EXPECT_EQ(oracle.failed, service.failed) << label;
  ExpectStatsEqual(oracle.merged_stats, service.merged_stats, label + " merged_stats");
  EXPECT_EQ(oracle.merged_report.Render(4), service.merged_report.Render(4)) << label;
  EXPECT_EQ(oracle.discovered, service.discovered) << label;
  for (size_t i = 0; i < oracle.jobs.size(); ++i) {
    const workload::FleetJobResult& a = oracle.jobs[i];
    const workload::FleetJobResult& b = service.jobs[i];
    const std::string job_label = label + " job " + std::to_string(i);
    EXPECT_EQ(a.ok, b.ok) << job_label;
    EXPECT_EQ(a.app_package, b.app_package) << job_label;
    EXPECT_EQ(a.device_id, b.device_id) << job_label;
    EXPECT_EQ(a.seed, b.seed) << job_label;
    ExpectStatsEqual(a.stats, b.stats, job_label + " stats");
    EXPECT_EQ(a.report.Render(4), b.report.Render(4)) << job_label;
    EXPECT_EQ(a.discovered, b.discovered) << job_label;
    EXPECT_DOUBLE_EQ(a.overhead_pct, b.overhead_pct) << job_label;
    EXPECT_EQ(a.stack_samples, b.stack_samples) << job_label;
    EXPECT_EQ(a.stream_ok, b.stream_ok) << job_label;
    EXPECT_EQ(a.Describe(), b.Describe()) << job_label;
  }
}

TEST(DetectorServiceTest, ServiceFleetMatchesPerJobOracleForEveryStudyApp) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  ASSERT_EQ(catalog.study_apps().size(), 16u);

  std::vector<workload::FleetJob> jobs = StudyFleet(&known_db);
  workload::FleetOptions oracle_options;
  oracle_options.jobs = 2;
  oracle_options.service = false;
  workload::FleetSummary oracle = workload::RunFleet(jobs, oracle_options);
  ASSERT_EQ(oracle.failed, 0u);

  for (int32_t shards : {1, 4, 7}) {
    workload::FleetOptions options;
    options.jobs = 2;
    options.service = true;
    options.shards = shards;
    workload::FleetSummary service = workload::RunFleet(jobs, options);
    ExpectSummariesEqual(oracle, service, "shards=" + std::to_string(shards));
  }
}

TEST(DetectorServiceTest, ServiceResultsIndependentOfWorkerCount) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  std::vector<workload::FleetJob> jobs = StudyFleet(&known_db);

  workload::FleetOptions serial;
  serial.jobs = 1;
  serial.shards = 3;
  workload::FleetSummary baseline = workload::RunFleet(jobs, serial);

  workload::FleetOptions wide;
  wide.jobs = 8;
  wide.shards = 3;
  workload::FleetSummary parallel = workload::RunFleet(jobs, wide);
  ExpectSummariesEqual(baseline, parallel, "jobs=8 vs jobs=1");
}

TEST(DetectorServiceTest, DescribeNamesIdentityAndHealth) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  std::vector<workload::FleetJob> jobs = StudyFleet(&known_db);
  jobs.resize(1);
  workload::FleetSummary summary = workload::RunFleet(jobs, {.jobs = 1});
  ASSERT_EQ(summary.jobs.size(), 1u);
  const workload::FleetJobResult& result = summary.jobs[0];
  EXPECT_EQ(result.app_package, jobs[0].spec->package);
  EXPECT_EQ(result.device_id, jobs[0].device_id);
  EXPECT_EQ(result.seed, jobs[0].seed);
  std::string line = result.Describe();
  EXPECT_NE(line.find(jobs[0].spec->package), std::string::npos) << line;
  EXPECT_NE(line.find("device 0"), std::string::npos) << line;
  EXPECT_NE(line.find("seed " + std::to_string(jobs[0].seed)), std::string::npos) << line;
  EXPECT_NE(line.find(" ok"), std::string::npos) << line;
}

// Direct service-surface tests (no fleet): lifecycle errors and accounting.

hangdoctor::SessionInfo TestInfo(const telemetry::SymbolTable* symbols) {
  hangdoctor::SessionInfo info;
  info.app_package = "com.example.session";
  info.num_actions = 4;
  info.symbols = symbols;
  return info;
}

TEST(DetectorServiceTest, LifecycleErrorsThrow) {
  telemetry::SymbolTable symbols;
  hangdoctor::DetectorService service(hangdoctor::ServiceOptions{4});
  hangdoctor::HangDoctorConfig config;
  telemetry::SessionId id{11};

  service.Open(id, TestInfo(&symbols), config);
  EXPECT_THROW(service.Open(id, TestInfo(&symbols), config), std::invalid_argument);

  hangdoctor::DispatchStart start;
  start.execution_id = 1;
  start.action_uid = 0;
  EXPECT_THROW(service.OnDispatchStart(telemetry::SessionId{99}, start),
               std::invalid_argument);
  EXPECT_THROW(service.Close(telemetry::SessionId{99}), std::invalid_argument);

  EXPECT_EQ(service.live_sessions(), 1u);
  hangdoctor::SessionResult result = service.Close(id);
  EXPECT_EQ(result.app_package, "com.example.session");
  EXPECT_EQ(service.live_sessions(), 0u);
  // Closed means gone: records for the id are unroutable and a re-close throws.
  EXPECT_THROW(service.OnDispatchStart(id, start), std::invalid_argument);
  EXPECT_THROW(service.Close(id), std::invalid_argument);
}

TEST(DetectorServiceTest, DiscardIsIdempotentAndFreesTheSession) {
  telemetry::SymbolTable symbols;
  hangdoctor::DetectorService service(hangdoctor::ServiceOptions{2});
  telemetry::SessionId id{5};
  service.Open(id, TestInfo(&symbols), hangdoctor::HangDoctorConfig{});
  EXPECT_EQ(service.live_sessions(), 1u);
  service.Discard(id);
  EXPECT_EQ(service.live_sessions(), 0u);
  service.Discard(id);  // idempotent: a second discard of the same id is a no-op
  EXPECT_EQ(service.live_sessions(), 0u);
  EXPECT_EQ(service.sessions_opened(), 1);
  // The id is reusable after discard.
  service.Open(id, TestInfo(&symbols), hangdoctor::HangDoctorConfig{});
  EXPECT_EQ(service.live_sessions(), 1u);
  EXPECT_EQ(service.sessions_opened(), 2);
}

TEST(DetectorServiceTest, ShardCountResolvesAndRoutesAllIds) {
  telemetry::SymbolTable symbols;
  // shards < 1 is a construction error, not a silent clamp (it would mask a bad topology).
  EXPECT_THROW(hangdoctor::DetectorService(hangdoctor::ServiceOptions{0}),
               std::invalid_argument);

  hangdoctor::DetectorService sharded(hangdoctor::ServiceOptions{7});
  EXPECT_EQ(sharded.shards(), 7);
  // Every id routes somewhere: open a spread of ids and close them all.
  for (uint64_t id = 0; id < 64; ++id) {
    sharded.Open(telemetry::SessionId{id * 1000003}, TestInfo(&symbols),
                 hangdoctor::HangDoctorConfig{});
  }
  EXPECT_EQ(sharded.live_sessions(), 64u);
  for (uint64_t id = 0; id < 64; ++id) {
    sharded.Close(telemetry::SessionId{id * 1000003});
  }
  EXPECT_EQ(sharded.live_sessions(), 0u);
}

TEST(DetectorServiceTest, MergeSessionReportsFoldsInAscendingIdOrder) {
  // Merge order must be a function of session ids, not of the order results are handed in.
  telemetry::SymbolTable symbols;
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();

  std::vector<hangdoctor::SessionResult> results;
  for (uint64_t id : {42, 7, 19}) {
    workload::SingleAppHarness harness(droidsim::LgV10(),
                                       catalog.study_apps()[id % 3], 8800 + id);
    hangdoctor::ServiceOptions options;
    options.shards = 1;
    options.seed_db = &known_db;  // the seed lives in the service now, not per session
    hangdoctor::DetectorService service(options);
    hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(),
                                  hangdoctor::HangDoctorConfig{}, &service,
                                  telemetry::SessionId{id});
    (void)doctor;
    harness.RunUserSession(simkit::Seconds(20));
    results.push_back(service.Close(telemetry::SessionId{id}));
  }

  hangdoctor::HangBugReport merged = hangdoctor::MergeSessionReports(results);
  std::vector<hangdoctor::SessionResult> reversed(results.rbegin(), results.rend());
  hangdoctor::HangBugReport merged_reversed = hangdoctor::MergeSessionReports(reversed);
  EXPECT_EQ(merged.Render(4), merged_reversed.Render(4));
}

}  // namespace
