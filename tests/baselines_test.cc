// Tests for the baseline detectors: Timeout-based, Utilization-based, the UT+TI combination,
// and the PerfChecker-style offline scanner with its three blind spots.
#include <gtest/gtest.h>

#include "src/baselines/combined_detector.h"
#include "src/baselines/offline_scanner.h"
#include "src/baselines/timeout_detector.h"
#include "src/baselines/utilization_detector.h"
#include "src/workload/api_catalog.h"
#include "src/workload/catalog.h"

namespace {

using baselines::CombinedDetector;
using baselines::OfflineScanner;
using baselines::TimeoutDetector;
using baselines::UtilizationDetector;
using droidsim::ActionSpec;
using droidsim::AppSpec;
using droidsim::InputEventSpec;
using droidsim::OpNode;

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() { apis_ = workload::BuildStandardApis(&registry_); }

  AppSpec OneActionApp(std::vector<OpNode> ops) {
    AppSpec spec;
    spec.name = "BaselineApp";
    spec.package = "com.test.baseline";
    ActionSpec action;
    action.name = "Go";
    InputEventSpec event;
    event.handler = "onClick";
    event.handler_file = "Go.java";
    event.handler_line = 7;
    event.ops = std::move(ops);
    action.events.push_back(std::move(event));
    spec.actions.push_back(std::move(action));
    return spec;
  }

  droidsim::ApiRegistry registry_;
  workload::StandardApis apis_;
};

TEST_F(BaselinesTest, TimeoutDetectorTracesHangsAboveItsTimeout) {
  OpNode bug = droidsim::MakeOp(apis_.gson_tojson, "Go.java", 9);  // ~800 ms CPU
  bug.manifest_probability = 1.0;
  AppSpec spec = OneActionApp({std::move(bug)});
  droidsim::Phone phone(droidsim::LgV10(), 11);
  droidsim::App* app = phone.InstallApp(&spec);
  baselines::TimeoutDetectorConfig fast_config;
  fast_config.timeout = simkit::Milliseconds(100);
  TimeoutDetector fast(&phone, app, fast_config);
  baselines::TimeoutDetectorConfig slow_config;
  slow_config.timeout = simkit::Seconds(5);
  TimeoutDetector slow(&phone, app, slow_config);
  app->PerformAction(0);
  phone.RunFor(simkit::Seconds(10));
  ASSERT_EQ(fast.outcomes().size(), 1u);
  EXPECT_TRUE(fast.outcomes()[0].hang);
  EXPECT_TRUE(fast.outcomes()[0].traced);
  EXPECT_EQ(fast.outcomes()[0].diagnosis.culprit.function, "toJson");
  // The ANR-style 5 s timeout misses the same hang entirely.
  ASSERT_EQ(slow.outcomes().size(), 1u);
  EXPECT_FALSE(slow.outcomes()[0].traced);
  EXPECT_FALSE(slow.outcomes()[0].flagged);
  // Tracing cost was paid by the fast detector only.
  EXPECT_GT(fast.overhead().cpu(), slow.overhead().cpu());
}

TEST_F(BaselinesTest, TimeoutDetectorIgnoresFastActions) {
  AppSpec spec = OneActionApp({droidsim::MakeOp(apis_.ui_set_text, "Go.java", 9)});
  droidsim::Phone phone(droidsim::LgV10(), 12);
  droidsim::App* app = phone.InstallApp(&spec);
  TimeoutDetector detector(&phone, app, baselines::TimeoutDetectorConfig{});
  app->PerformAction(0);
  phone.RunFor(simkit::Seconds(5));
  ASSERT_EQ(detector.outcomes().size(), 1u);
  EXPECT_FALSE(detector.outcomes()[0].hang);
  EXPECT_FALSE(detector.outcomes()[0].traced);
}

TEST(UtilizationMathTest, ComputeUtilizationWindows) {
  kernelsim::ThreadStats before;
  kernelsim::ThreadStats after;
  after.cpu_time = simkit::Milliseconds(50);
  after.minor_faults = 100;
  after.allocated_bytes = 0;
  baselines::UtilizationSample sample =
      baselines::ComputeUtilization(before, after, simkit::Milliseconds(100));
  EXPECT_NEAR(sample.cpu_fraction, 0.5, 1e-9);
  EXPECT_NEAR(sample.mem_bytes_per_sec, 100 * 4096 / 0.1, 1.0);
  baselines::UtilizationThresholds thresholds;
  thresholds.cpu_fraction = 0.4;
  thresholds.mem_bytes_per_sec = 1e12;
  EXPECT_TRUE(sample.Above(thresholds));
  thresholds.cpu_fraction = 0.6;
  EXPECT_FALSE(sample.Above(thresholds));
  EXPECT_DOUBLE_EQ(baselines::ComputeUtilization(before, after, 0).cpu_fraction, 0.0);
}

TEST_F(BaselinesTest, UtilizationDetectorLowThresholdTracesBusyHang) {
  OpNode bug = droidsim::MakeOp(apis_.gson_tojson, "Go.java", 9);
  bug.manifest_probability = 1.0;
  AppSpec spec = OneActionApp({std::move(bug)});
  droidsim::Phone phone(droidsim::LgV10(), 13);
  droidsim::App* app = phone.InstallApp(&spec);
  baselines::UtilizationDetectorConfig config;
  config.thresholds.cpu_fraction = 0.2;
  config.thresholds.mem_bytes_per_sec = 1e12;
  UtilizationDetector detector(&phone, app, config);
  app->PerformAction(0);
  phone.RunFor(simkit::Seconds(10));
  ASSERT_EQ(detector.outcomes().size(), 1u);
  EXPECT_TRUE(detector.outcomes()[0].flagged);
  EXPECT_TRUE(detector.outcomes()[0].traced);
  EXPECT_GT(detector.samples_taken(), 50);  // periodic sampling ran the whole time
}

TEST_F(BaselinesTest, UtilizationDetectorHighThresholdMissesIoBug) {
  // camera.open blocks with almost no CPU: a high CPU/memory threshold never fires.
  OpNode bug = droidsim::MakeOp(apis_.camera_open, "Go.java", 9);
  bug.manifest_probability = 1.0;
  AppSpec spec = OneActionApp({std::move(bug)});
  droidsim::Phone phone(droidsim::LgV10(), 14);
  droidsim::App* app = phone.InstallApp(&spec);
  baselines::UtilizationDetectorConfig config;
  config.thresholds.cpu_fraction = 0.95;
  config.thresholds.mem_bytes_per_sec = 1e12;
  UtilizationDetector detector(&phone, app, config);
  app->PerformAction(0);
  phone.RunFor(simkit::Seconds(10));
  ASSERT_EQ(detector.outcomes().size(), 1u);
  EXPECT_TRUE(detector.outcomes()[0].hang);       // the hang happened...
  EXPECT_FALSE(detector.outcomes()[0].traced);    // ...but UTH never noticed
}

TEST_F(BaselinesTest, UtilizationDetectorRaisesSpuriousAlarmsOffHang) {
  // Absurdly low thresholds: ticks outside any dispatch raise spurious detections.
  AppSpec spec = OneActionApp({droidsim::MakeOp(apis_.ui_set_text, "Go.java", 9)});
  droidsim::Phone phone(droidsim::LgV10(), 15);
  droidsim::App* app = phone.InstallApp(&spec);
  baselines::UtilizationDetectorConfig config;
  config.thresholds.cpu_fraction = -1.0;  // always above
  config.thresholds.mem_bytes_per_sec = -1.0;
  UtilizationDetector detector(&phone, app, config);
  phone.RunFor(simkit::Seconds(5));
  EXPECT_GT(detector.spurious_detections(), 10);
}

TEST_F(BaselinesTest, CombinedDetectorSamplesOnlyDuringHangs) {
  OpNode bug = droidsim::MakeOp(apis_.gson_tojson, "Go.java", 9);
  bug.manifest_probability = 1.0;
  AppSpec spec = OneActionApp({std::move(bug)});
  droidsim::Phone phone(droidsim::LgV10(), 16);
  droidsim::App* app = phone.InstallApp(&spec);
  baselines::CombinedDetectorConfig config;
  config.thresholds.cpu_fraction = 0.2;
  config.thresholds.mem_bytes_per_sec = 1e12;
  CombinedDetector detector(&phone, app, config);
  app->PerformAction(0);
  phone.RunFor(simkit::Seconds(10));
  ASSERT_EQ(detector.outcomes().size(), 1u);
  EXPECT_TRUE(detector.outcomes()[0].flagged);
  EXPECT_TRUE(detector.outcomes()[0].traced);
  // UT+TI pays nothing while idle: overhead far below a periodic sampler's.
  baselines::UtilizationDetectorConfig periodic_config;
  periodic_config.thresholds = config.thresholds;
  droidsim::Phone phone2(droidsim::LgV10(), 16);
  droidsim::App* app2 = phone2.InstallApp(&spec);
  UtilizationDetector periodic(&phone2, app2, periodic_config);
  app2->PerformAction(0);
  phone2.RunFor(simkit::Seconds(10));
  EXPECT_LT(detector.overhead().cpu(), periodic.overhead().cpu());
}

TEST_F(BaselinesTest, CombinedDetectorIgnoresQuietHangs) {
  OpNode bug = droidsim::MakeOp(apis_.camera_open, "Go.java", 9);
  bug.manifest_probability = 1.0;
  AppSpec spec = OneActionApp({std::move(bug)});
  droidsim::Phone phone(droidsim::LgV10(), 17);
  droidsim::App* app = phone.InstallApp(&spec);
  baselines::CombinedDetectorConfig config;
  config.thresholds.cpu_fraction = 0.95;
  config.thresholds.mem_bytes_per_sec = 1e12;
  CombinedDetector detector(&phone, app, config);
  app->PerformAction(0);
  phone.RunFor(simkit::Seconds(10));
  ASSERT_EQ(detector.outcomes().size(), 1u);
  EXPECT_FALSE(detector.outcomes()[0].traced);
}

// ------------------------- Offline scanner (PerfChecker-like) -------------------------

TEST(OfflineScannerTest, FindsKnownBlockingApisOnMainThread) {
  workload::Catalog catalog;
  hangdoctor::BlockingApiDatabase database = catalog.MakeKnownDatabase();
  OfflineScanner scanner(&database);
  const droidsim::AppSpec* sticker = catalog.FindApp("StickerCamera");
  ASSERT_NE(sticker, nullptr);
  EXPECT_TRUE(scanner.Detects(*sticker, "android.hardware.Camera.open"));
  EXPECT_TRUE(scanner.Detects(*sticker, "android.graphics.BitmapFactory.decodeFile"));
}

TEST(OfflineScannerTest, BlindSpotUnknownApis) {
  workload::Catalog catalog;
  hangdoctor::BlockingApiDatabase database = catalog.MakeKnownDatabase();
  OfflineScanner scanner(&database);
  const droidsim::AppSpec* k9 = catalog.FindApp("K9-Mail");
  // clean() is right there on the main thread, but nobody knows it blocks.
  EXPECT_FALSE(scanner.Detects(*k9, "org.htmlcleaner.HtmlCleaner.clean"));
  // After Hang Doctor's discovery feeds the database, the same scan finds it.
  database.AddDiscovered("org.htmlcleaner.HtmlCleaner.clean");
  EXPECT_TRUE(scanner.Detects(*k9, "org.htmlcleaner.HtmlCleaner.clean"));
}

TEST(OfflineScannerTest, BlindSpotClosedLibraries) {
  droidsim::ApiRegistry registry;
  workload::StandardApis apis = workload::BuildStandardApis(&registry);
  droidsim::AppSpec spec;
  spec.name = "ClosedLib";
  spec.package = "com.test.closedlib";
  droidsim::ActionSpec action;
  action.name = "Store";
  droidsim::InputEventSpec event;
  droidsim::OpNode wrapper = droidsim::MakeLibraryOp(apis.cupboard_get, "Wrapper.java", 29);
  wrapper.children.push_back(droidsim::MakeLibraryOp(apis.db_insert, "Hidden.java", 205));
  event.ops.push_back(std::move(wrapper));
  action.events.push_back(std::move(event));
  spec.actions.push_back(std::move(action));
  hangdoctor::BlockingApiDatabase database;
  database.SeedKnown(apis.db_insert->FullName());
  OfflineScanner scanner(&database);
  // The insert is known-blocking, but it hides behind a closed-source frame.
  EXPECT_TRUE(scanner.Scan(spec).empty());
}

TEST(OfflineScannerTest, WorkerSubtreesAreNotBugs) {
  droidsim::ApiRegistry registry;
  workload::StandardApis apis = workload::BuildStandardApis(&registry);
  droidsim::AppSpec spec;
  spec.name = "Fixed";
  spec.package = "com.test.fixed";
  droidsim::ActionSpec action;
  droidsim::InputEventSpec event;
  droidsim::OpNode open = droidsim::MakeOp(apis.camera_open, "Main.java", 10);
  open.on_worker = true;  // correctly moved off the main thread
  event.ops.push_back(std::move(open));
  action.events.push_back(std::move(event));
  spec.actions.push_back(std::move(action));
  hangdoctor::BlockingApiDatabase database;
  database.SeedKnown(apis.camera_open->FullName());
  OfflineScanner scanner(&database);
  EXPECT_TRUE(scanner.Scan(spec).empty());
}

TEST(OfflineScannerTest, FindingsCarryCallSites) {
  workload::Catalog catalog;
  hangdoctor::BlockingApiDatabase database = catalog.MakeKnownDatabase();
  OfflineScanner scanner(&database);
  const droidsim::AppSpec* dashclock = catalog.FindApp("DashClock");
  std::vector<baselines::OfflineFinding> findings = scanner.Scan(*dashclock);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].api, "android.database.sqlite.SQLiteDatabase.query");
  EXPECT_EQ(findings[0].file, "ExtensionManager.java");
  EXPECT_EQ(findings[0].line, 152);
  EXPECT_EQ(findings[0].action, "RefreshWidgets");
}

}  // namespace
