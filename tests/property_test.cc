// Property-based tests: parameterized sweeps over seeds and configurations asserting the
// system's invariants rather than specific values.
#include <map>

#include <gtest/gtest.h>

#include "src/baselines/timeout_detector.h"
#include "src/hosts/hang_doctor.h"
#include "src/workload/catalog.h"
#include "src/workload/experiment.h"
#include "src/workload/training.h"
#include "src/workload/user_model.h"

namespace {

const workload::Catalog& SharedCatalog() {
  static const workload::Catalog* catalog = new workload::Catalog();
  return *catalog;
}

// ---------- Property: simulation runs are deterministic in the seed ----------

class DeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismTest, SameSeedSameDetections) {
  const workload::Catalog& catalog = SharedCatalog();
  auto run = [&](uint64_t seed) {
    workload::SingleAppHarness harness(droidsim::LgV10(), catalog.FindApp("K9-Mail"), seed);
    hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(),
                                  hangdoctor::HangDoctorConfig{});
    harness.RunUserSession(simkit::Seconds(60));
    std::vector<std::pair<int64_t, int>> log;
    for (const hangdoctor::ExecutionRecord& record : doctor.log()) {
      log.emplace_back(record.response, static_cast<int>(record.verdict));
    }
    return log;
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest, ::testing::Values(1, 17, 9001));

// ---------- Property: the kernel never creates CPU time out of thin air ----------

class ConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConservationTest, TotalCpuBoundedByWallClockTimesCores) {
  const workload::Catalog& catalog = SharedCatalog();
  droidsim::Phone phone(droidsim::LgV10(), GetParam());
  droidsim::App* app = phone.InstallApp(catalog.FindApp("QKSMS"));
  workload::UserSession user(&phone, app, phone.ForkRng(1));
  phone.RunFor(simkit::Seconds(45));
  simkit::SimDuration total = 0;
  for (kernelsim::ThreadId tid :
       {app->main_tid(), app->render_tid(), app->worker_looper().tid()}) {
    total += phone.kernel().GetThread(tid).stats.cpu_time;
  }
  EXPECT_LE(total, phone.Now() * phone.profile().kernel.num_cpus);
  // And per-thread CPU never exceeds the wall clock.
  EXPECT_LE(phone.kernel().GetThread(app->main_tid()).stats.cpu_time, phone.Now());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest, ::testing::Values(2, 23, 404));

// ---------- Property: Hang Doctor never convicts a bug-free app ----------

class NoFalseConvictionTest : public ::testing::TestWithParam<int> {};

TEST_P(NoFalseConvictionTest, FillerAppsProduceNoBugReports) {
  const workload::Catalog& catalog = SharedCatalog();
  const droidsim::AppSpec* spec = catalog.filler_apps()[static_cast<size_t>(GetParam())];
  workload::SingleAppHarness harness(droidsim::LgV10(), spec, 600 + GetParam());
  hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(),
                                hangdoctor::HangDoctorConfig{});
  harness.RunUserSession(simkit::Seconds(90));
  EXPECT_EQ(doctor.local_report().NumBugs(), 0u)
      << doctor.local_report().Render(1) << " in " << spec->name;
}

INSTANTIATE_TEST_SUITE_P(FillerApps, NoFalseConvictionTest,
                         ::testing::Values(0, 7, 19, 33, 42, 58, 71, 89));

// ---------- Property: longer timeouts can only reduce what TI traces ----------

class TimeoutMonotonicityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TimeoutMonotonicityTest, TracedCountDecreasesWithTimeout) {
  const workload::Catalog& catalog = SharedCatalog();
  workload::SingleAppHarness harness(droidsim::LgV10(), catalog.FindApp(GetParam()), 77);
  std::vector<std::unique_ptr<baselines::TimeoutDetector>> detectors;
  for (simkit::SimDuration timeout :
       {simkit::Milliseconds(100), simkit::Milliseconds(500), simkit::Seconds(1),
        simkit::Seconds(5)}) {
    baselines::TimeoutDetectorConfig config;
    config.timeout = timeout;
    detectors.push_back(std::make_unique<baselines::TimeoutDetector>(&harness.phone(),
                                                                     &harness.app(), config));
  }
  harness.RunUserSession(simkit::Seconds(90));
  std::vector<int64_t> traced;
  for (const auto& detector : detectors) {
    int64_t count = 0;
    for (const baselines::DetectionOutcome& outcome : detector->outcomes()) {
      count += outcome.traced ? 1 : 0;
    }
    traced.push_back(count);
  }
  for (size_t i = 1; i < traced.size(); ++i) {
    EXPECT_LE(traced[i], traced[i - 1]) << "timeout index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, TimeoutMonotonicityTest,
                         ::testing::Values("K9-Mail", "SeaDroid", "cgeo"));

// ---------- Property: S-Checker's phase-1 verdicts never pay for traces ----------

class PhaseCostTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PhaseCostTest, OnlyDiagnoserExecutionsTrace) {
  const workload::Catalog& catalog = SharedCatalog();
  workload::SingleAppHarness harness(droidsim::LgV10(), catalog.FindApp(GetParam()), 88);
  hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(),
                                hangdoctor::HangDoctorConfig{});
  harness.RunUserSession(simkit::Seconds(120));
  for (const hangdoctor::ExecutionRecord& record : doctor.log()) {
    if (record.traced) {
      EXPECT_TRUE(record.diagnoser_ran);
      EXPECT_TRUE(record.state_before == hangdoctor::ActionState::kSuspicious ||
                  record.state_before == hangdoctor::ActionState::kHangBug);
    }
    if (record.verdict == hangdoctor::Verdict::kFilteredUi ||
        record.verdict == hangdoctor::Verdict::kMarkedSuspicious) {
      EXPECT_FALSE(record.traced);  // phase 1 is counters-only
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, PhaseCostTest,
                         ::testing::Values("AndStatus", "Omni-Notes", "SageMath", "SkyTube"));

// ---------- Property: every diagnosed culprit names a real operation of the app ----------

class CulpritValidityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CulpritValidityTest, DiagnosedCulpritsExistInAppSpec) {
  const workload::Catalog& catalog = SharedCatalog();
  const droidsim::AppSpec* spec = catalog.FindApp(GetParam());
  workload::SingleAppHarness harness(droidsim::LgV10(), spec, 99);
  hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(),
                                hangdoctor::HangDoctorConfig{});
  harness.RunUserSession(simkit::Seconds(150));
  // Collect every (clazz.function) reachable from the app spec, plus handlers.
  std::set<std::string> known;
  std::function<void(const droidsim::OpNode&)> walk = [&](const droidsim::OpNode& node) {
    known.insert(node.api->FullName());
    for (const droidsim::OpNode& child : node.children) {
      walk(child);
    }
  };
  for (const droidsim::ActionSpec& action : spec->actions) {
    for (const droidsim::InputEventSpec& event : action.events) {
      known.insert("." + event.handler);  // handler frames have an empty class
      for (const droidsim::OpNode& node : event.ops) {
        walk(node);
      }
    }
  }
  for (const hangdoctor::BugReportEntry& entry : doctor.local_report().SortedEntries()) {
    EXPECT_TRUE(known.count(entry.api) > 0) << entry.api;
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, CulpritValidityTest,
                         ::testing::Values("K9-Mail", "CycleStreets", "QKSMS", "Merchant",
                                           "RadioDroid"));

// ---------- Property: trained filters never miss a training bug ----------

class TrainerCoverageTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrainerCoverageTest, ZeroFalseNegativesOnTrainingSet) {
  const workload::Catalog& catalog = SharedCatalog();
  workload::TrainingConfig config;
  config.executions_per_op = 5;
  config.seed = GetParam();
  workload::TrainingData data = workload::CollectTrainingSamples(catalog, config);
  std::vector<hangdoctor::RankedEvent> ranking = hangdoctor::RankEvents(data.diff_samples);
  hangdoctor::SoftHangFilter filter = hangdoctor::TrainFilter(data.diff_samples, ranking);
  hangdoctor::FilterQuality quality = hangdoctor::EvaluateFilter(filter, data.diff_samples);
  // Zero false negatives is the paper's hard requirement; false-positive pruning is a
  // best-effort secondary objective (it can collapse on tiny training sets, so it is asserted
  // separately on the full-size set below).
  EXPECT_EQ(quality.false_negatives, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrainerCoverageTest, ::testing::Values(99, 123, 7777));

TEST(TrainerQualityTest, FullTrainingSetPrunesMostUiHangs) {
  const workload::Catalog& catalog = SharedCatalog();
  workload::TrainingConfig config;  // full-size defaults
  workload::TrainingData data = workload::CollectTrainingSamples(catalog, config);
  std::vector<hangdoctor::RankedEvent> ranking = hangdoctor::RankEvents(data.diff_samples);
  hangdoctor::SoftHangFilter filter = hangdoctor::TrainFilter(data.diff_samples, ranking);
  hangdoctor::FilterQuality quality = hangdoctor::EvaluateFilter(filter, data.diff_samples);
  EXPECT_EQ(quality.false_negatives, 0);
  EXPECT_GT(quality.FalsePositivePruneRate(), 0.5);
  EXPECT_GT(quality.Accuracy(), 0.75);
}

// ---------- Property: responses and quiescence are sane across the whole corpus ----------

class ResponseSanityTest : public ::testing::TestWithParam<int> {};

TEST_P(ResponseSanityTest, EveryExecutionQuiescesWithNonNegativeResponse) {
  const workload::Catalog& catalog = SharedCatalog();
  const droidsim::AppSpec* spec =
      catalog.study_apps()[static_cast<size_t>(GetParam()) % catalog.study_apps().size()];
  workload::SingleAppHarness harness(droidsim::LgV10(), spec, 1000 + GetParam());
  harness.RunUserSession(simkit::Seconds(60));
  EXPECT_GT(harness.truth().labels().size(), 0u);
  for (const workload::HangLabel& label : harness.truth().labels()) {
    EXPECT_GE(label.response, 0);
    EXPECT_LT(label.response, simkit::Seconds(30));
    EXPECT_EQ(label.hang, label.response > simkit::kPerceivableDelay);
  }
}

INSTANTIATE_TEST_SUITE_P(StudyApps, ResponseSanityTest, ::testing::Range(0, 16));

}  // namespace
