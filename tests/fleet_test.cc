// The fleet runner's determinism contract (same seeds => same results at any parallelism)
// and its fault isolation (a throwing job fails alone), plus the simkit thread pool it
// rides on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/simkit/thread_pool.h"
#include "src/workload/catalog.h"
#include "src/workload/fleet.h"

namespace {

const workload::Catalog& SharedCatalog() {
  static const workload::Catalog* catalog = new workload::Catalog();
  return *catalog;
}

// An 8-job fleet mixing apps, devices, and seeds — small sessions keep the suite quick.
std::vector<workload::FleetJob> MixedFleet(const hangdoctor::BlockingApiDatabase* known_db) {
  const workload::Catalog& catalog = SharedCatalog();
  std::vector<workload::FleetJob> jobs;
  for (int32_t i = 0; i < 8; ++i) {
    workload::FleetJob job;
    job.spec = catalog.FindApp(i % 2 == 0 ? "K9-Mail" : "AndStatus");
    job.profile = i % 3 == 0 ? droidsim::Nexus5() : droidsim::LgV10();
    job.seed = workload::FleetSeed(2026, static_cast<uint64_t>(i));
    job.session = simkit::Seconds(45);
    job.device_id = i;
    job.known_db = known_db;
    jobs.push_back(job);
  }
  return jobs;
}

void ExpectIdenticalStats(const workload::DetectionStats& a, const workload::DetectionStats& b) {
  EXPECT_EQ(a.true_positives, b.true_positives);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_EQ(a.false_negatives, b.false_negatives);
  EXPECT_EQ(a.bug_hangs, b.bug_hangs);
  EXPECT_EQ(a.ui_hangs, b.ui_hangs);
  EXPECT_EQ(a.overhead_pct, b.overhead_pct);  // bit-identical, not approximately
}

void ExpectIdenticalReports(const hangdoctor::HangBugReport& a,
                            const hangdoctor::HangBugReport& b) {
  std::vector<hangdoctor::BugReportEntry> ea = a.SortedEntries();
  std::vector<hangdoctor::BugReportEntry> eb = b.SortedEntries();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].app_package, eb[i].app_package);
    EXPECT_EQ(ea[i].api, eb[i].api);
    EXPECT_EQ(ea[i].file, eb[i].file);
    EXPECT_EQ(ea[i].line, eb[i].line);
    EXPECT_EQ(ea[i].occurrences, eb[i].occurrences);
    EXPECT_EQ(ea[i].devices, eb[i].devices);
    EXPECT_EQ(ea[i].total_hang, eb[i].total_hang);
    EXPECT_EQ(ea[i].max_hang, eb[i].max_hang);
  }
}

TEST(FleetSeedTest, DeterministicAndDistinctPerIndex) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 64; ++i) {
    uint64_t seed = workload::FleetSeed(7, i);
    EXPECT_EQ(seed, workload::FleetSeed(7, i));
    seen.insert(seed);
  }
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_NE(workload::FleetSeed(7, 0), workload::FleetSeed(8, 0));
}

TEST(FleetDeterminismTest, SameResultsAtJobs1AndJobs4) {
  hangdoctor::BlockingApiDatabase known_db = SharedCatalog().MakeKnownDatabase();
  std::vector<workload::FleetJob> jobs = MixedFleet(&known_db);

  workload::FleetSummary serial = workload::RunFleet(jobs, {.jobs = 1});
  workload::FleetSummary parallel = workload::RunFleet(jobs, {.jobs = 4});

  ASSERT_EQ(serial.failed, 0u);
  ASSERT_EQ(parallel.failed, 0u);
  ExpectIdenticalStats(serial.merged_stats, parallel.merged_stats);
  ExpectIdenticalReports(serial.merged_report, parallel.merged_report);
  EXPECT_EQ(serial.discovered, parallel.discovered);
  ASSERT_EQ(serial.jobs.size(), parallel.jobs.size());
  for (size_t i = 0; i < serial.jobs.size(); ++i) {
    ExpectIdenticalStats(serial.jobs[i].stats, parallel.jobs[i].stats);
    ExpectIdenticalReports(serial.jobs[i].report, parallel.jobs[i].report);
    EXPECT_EQ(serial.jobs[i].discovered, parallel.jobs[i].discovered);
    EXPECT_EQ(serial.jobs[i].stack_samples, parallel.jobs[i].stack_samples);
  }
  // The fleet actually detected something — the comparison is not vacuously over zeros.
  EXPECT_GT(serial.merged_stats.true_positives, 0);
  EXPECT_GT(serial.merged_report.NumBugs(), 0u);
}

TEST(FleetFaultIsolationTest, ThrowingJobFailsAloneWithoutPoisoningThePool) {
  std::vector<workload::FleetJob> jobs = MixedFleet(nullptr);
  jobs.resize(4);
  workload::FleetJob bad;  // null spec makes RunFleetJob throw
  jobs.insert(jobs.begin() + 2, bad);

  workload::FleetSummary summary = workload::RunFleet(jobs, {.jobs = 2});
  EXPECT_EQ(summary.failed, 1u);
  for (size_t i = 0; i < summary.jobs.size(); ++i) {
    if (i == 2) {
      EXPECT_FALSE(summary.jobs[i].ok);
      EXPECT_FALSE(summary.jobs[i].error.empty());
    } else {
      EXPECT_TRUE(summary.jobs[i].ok) << i << ": " << summary.jobs[i].error;
    }
  }

  // The failed job contributes nothing to the merge; the good jobs' folds still happen.
  workload::DetectionStats good_sum;
  for (const workload::FleetJobResult& result : summary.jobs) {
    if (result.ok) {
      good_sum += result.stats;
    }
  }
  ExpectIdenticalStats(summary.merged_stats, good_sum);
}

TEST(ThreadPoolTest, RunsEverySubmittedTaskAcrossWorkers) {
  simkit::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int64_t> sum{0};
  for (int64_t i = 1; i <= 1000; ++i) {
    pool.Submit([&sum, i]() { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 500500);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  simkit::ThreadPool pool(3);
  std::vector<std::atomic<int32_t>> hits(257);
  pool.ParallelFor(257, [&hits](int64_t i) { hits[static_cast<size_t>(i)].fetch_add(1); });
  for (const std::atomic<int32_t>& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, SurvivesThrowingTasksAndStaysUsable) {
  simkit::ThreadPool pool(2);
  std::atomic<int32_t> ran{0};
  for (int32_t i = 0; i < 16; ++i) {
    pool.Submit([&ran, i]() {
      if (i % 4 == 0) {
        throw std::runtime_error("task failure");
      }
      ran.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 12);
  // Still alive after the exceptions: new work completes.
  pool.Submit([&ran]() { ran.fetch_add(100); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 112);
}

TEST(ThreadPoolTest, DefaultJobCountHonoursEnvironment) {
  ASSERT_EQ(setenv("HANGDOCTOR_JOBS", "3", 1), 0);
  EXPECT_EQ(simkit::ThreadPool::DefaultJobCount(), 3);
  ASSERT_EQ(setenv("HANGDOCTOR_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(simkit::ThreadPool::DefaultJobCount(), 1);
  ASSERT_EQ(unsetenv("HANGDOCTOR_JOBS"), 0);
  EXPECT_GE(simkit::ThreadPool::DefaultJobCount(), 1);
}

}  // namespace
