// Integration tests of the full Hang Doctor runtime on simulated phones: the Figure 3 state
// machine end to end, both phases, occasional bugs, self-developed operations, closed-library
// bugs, main-only mode and the test-bed (second-phase-only) mode.
#include <gtest/gtest.h>

#include "src/hosts/hang_doctor.h"
#include "src/workload/api_catalog.h"
#include "src/workload/user_model.h"

namespace {

using droidsim::ActionSpec;
using droidsim::AppSpec;
using droidsim::InputEventSpec;
using droidsim::OpNode;
using hangdoctor::ActionState;
using hangdoctor::HangDoctor;
using hangdoctor::HangDoctorConfig;
using hangdoctor::Verdict;

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() { apis_ = workload::BuildStandardApis(&registry_); }

  ActionSpec Action(const std::string& name, std::vector<OpNode> ops) {
    ActionSpec action;
    action.name = name;
    action.weight = 1.0;
    InputEventSpec event;
    event.handler = "onClick";
    event.handler_file = name + ".java";
    event.handler_line = 11;
    event.ops = std::move(ops);
    action.events.push_back(std::move(event));
    return action;
  }

  OpNode Bug(const droidsim::ApiSpec* api, double manifest = 1.0) {
    OpNode node = droidsim::MakeOp(api, "Bug.java", 99);
    node.manifest_probability = manifest;
    return node;
  }

  // Performs action `uid` `times` times with breathing room in between.
  void Drive(droidsim::Phone* phone, droidsim::App* app, int32_t uid, int times) {
    for (int i = 0; i < times; ++i) {
      app->PerformAction(uid);
      phone->RunFor(simkit::Seconds(6));
    }
  }

  droidsim::ApiRegistry registry_;
  workload::StandardApis apis_;
};

TEST_F(RuntimeTest, BugActionWalksPathC) {
  AppSpec spec;
  spec.name = "PathC";
  spec.package = "com.test.pathc";
  spec.actions.push_back(Action("Save", {Bug(apis_.gson_tojson)}));
  droidsim::Phone phone(droidsim::LgV10(), 1);
  droidsim::App* app = phone.InstallApp(&spec);
  HangDoctor doctor(&phone, app, HangDoctorConfig{});
  Drive(&phone, app, 0, 3);
  // Execution 1: S-Checker marks Suspicious. Execution 2: Diagnoser confirms the bug.
  EXPECT_EQ(doctor.actions().Find(0)->state, ActionState::kHangBug);
  ASSERT_GE(doctor.log().size(), 3u);
  EXPECT_EQ(doctor.log()[0].verdict, Verdict::kMarkedSuspicious);
  EXPECT_TRUE(doctor.log()[0].schecker_ran);
  EXPECT_FALSE(doctor.log()[0].traced);  // phase 1 never collects traces
  EXPECT_EQ(doctor.log()[1].verdict, Verdict::kDiagnosedBug);
  EXPECT_TRUE(doctor.log()[1].traced);
  EXPECT_EQ(doctor.log()[1].diagnosis.culprit.function, "toJson");
  // HangBug actions keep being diagnosed on every subsequent hang.
  EXPECT_EQ(doctor.log()[2].verdict, Verdict::kDiagnosedBug);
  // The discovery reached the blocking-API database (toJson was unknown).
  EXPECT_TRUE(doctor.database().IsKnown("com.google.gson.Gson.toJson"));
  EXPECT_EQ(doctor.local_report().NumBugs(), 1u);
}

TEST_F(RuntimeTest, UiActionWalksPathA) {
  AppSpec spec;
  spec.name = "PathA";
  spec.package = "com.test.patha";
  spec.actions.push_back(Action(
      "Open", {droidsim::MakeOp(apis_.ui_inflate, "Open.java", 5),
               droidsim::MakeOp(apis_.ui_list_layout, "Open.java", 9)}));
  droidsim::Phone phone(droidsim::LgV10(), 2);
  droidsim::App* app = phone.InstallApp(&spec);
  HangDoctor doctor(&phone, app, HangDoctorConfig{});
  Drive(&phone, app, 0, 4);
  EXPECT_EQ(doctor.actions().Find(0)->state, ActionState::kNormal);
  for (const hangdoctor::ExecutionRecord& record : doctor.log()) {
    EXPECT_FALSE(record.traced);
    EXPECT_NE(record.verdict, Verdict::kDiagnosedBug);
  }
  EXPECT_EQ(doctor.local_report().NumBugs(), 0u);
}

TEST_F(RuntimeTest, PageFaultFalsePositiveWalksPathB) {
  // A gallery bind allocates enough to trip the page-fault condition; the Diagnoser must
  // recognize the UI-class culprit and send the action to Normal (path B).
  AppSpec spec;
  spec.name = "PathB";
  spec.package = "com.test.pathb";
  spec.actions.push_back(Action(
      "Grid", {droidsim::MakeOp(apis_.ui_gallery_bind, "Grid.java", 5),
               droidsim::MakeOp(apis_.ui_list_layout, "Grid.java", 9)}));
  droidsim::Phone phone(droidsim::LgV10(), 3);
  droidsim::App* app = phone.InstallApp(&spec);
  HangDoctor doctor(&phone, app, HangDoctorConfig{});
  Drive(&phone, app, 0, 6);
  EXPECT_EQ(doctor.actions().Find(0)->state, ActionState::kNormal);
  bool saw_suspicious = false;
  bool saw_diagnosed_ui = false;
  for (const hangdoctor::ExecutionRecord& record : doctor.log()) {
    saw_suspicious |= record.verdict == Verdict::kMarkedSuspicious;
    saw_diagnosed_ui |= record.verdict == Verdict::kDiagnosedUi;
    EXPECT_NE(record.verdict, Verdict::kDiagnosedBug);
  }
  EXPECT_TRUE(saw_suspicious);
  EXPECT_TRUE(saw_diagnosed_ui);
  EXPECT_EQ(doctor.local_report().NumBugs(), 0u);
}

TEST_F(RuntimeTest, OccasionalBugStaysSuspiciousUntilItHangsAgain) {
  AppSpec spec;
  spec.name = "Occasional";
  spec.package = "com.test.occ";
  spec.actions.push_back(Action("Sync", {Bug(apis_.gson_tojson, /*manifest=*/1.0)}));
  droidsim::Phone phone(droidsim::LgV10(), 4);
  droidsim::App* app = phone.InstallApp(&spec);
  // Control manifestation per execution by editing the spec between runs is not possible;
  // instead use a low manifest probability and check the kAwaitingHang verdict occurs.
  spec.actions[0].events[0].ops[0].manifest_probability = 0.3;
  HangDoctor doctor(&phone, app, HangDoctorConfig{});
  Drive(&phone, app, 0, 20);
  bool awaited = false;
  for (const hangdoctor::ExecutionRecord& record : doctor.log()) {
    if (record.verdict == Verdict::kAwaitingHang) {
      awaited = true;
      EXPECT_TRUE(record.state_before == ActionState::kSuspicious ||
                  record.state_before == ActionState::kHangBug);
    }
  }
  EXPECT_TRUE(awaited);
  EXPECT_EQ(doctor.actions().Find(0)->state, ActionState::kHangBug);
}

TEST_F(RuntimeTest, SelfDevelopedOperationReportedButNotAddedToDatabase) {
  const droidsim::ApiSpec* loop = workload::MakeSelfDevelopedApi(
      &registry_, "com.test.selfdev.Worker", "crunchAll", simkit::Milliseconds(4), 256 * 1024,
      0.3);
  OpNode parent = droidsim::MakeOp(loop, "Worker.java", 40);
  for (int i = 0; i < 40; ++i) {
    // Distinct call sites: no single callee dominates the stack samples, only the caller.
    parent.children.push_back(droidsim::MakeOp(apis_.small_file_read, "Worker.java", 52 + i));
  }
  AppSpec spec;
  spec.name = "SelfDev";
  spec.package = "com.test.selfdev";
  spec.actions.push_back(Action("Crunch", {std::move(parent)}));
  droidsim::Phone phone(droidsim::LgV10(), 5);
  droidsim::App* app = phone.InstallApp(&spec);
  HangDoctor doctor(&phone, app, HangDoctorConfig{});
  Drive(&phone, app, 0, 4);
  EXPECT_EQ(doctor.actions().Find(0)->state, ActionState::kHangBug);
  ASSERT_EQ(doctor.local_report().NumBugs(), 1u);
  hangdoctor::BugReportEntry entry = doctor.local_report().SortedEntries()[0];
  EXPECT_TRUE(entry.self_developed);
  EXPECT_EQ(entry.api, "com.test.selfdev.Worker.crunchAll");
  // Self-developed operations go only to the developer, not the offline API database.
  EXPECT_FALSE(doctor.database().IsKnown("com.test.selfdev.Worker.crunchAll"));
}

TEST_F(RuntimeTest, ClosedLibraryBugIsDiagnosedAtRuntime) {
  // A known-blocking insert hidden behind a closed-source wrapper: offline scanners are
  // blind (tested in baselines_test); Hang Doctor still names the real culprit.
  OpNode wrapper = droidsim::MakeOp(apis_.cupboard_get, "Wrapper.java", 29);
  OpNode inner = droidsim::MakeOp(apis_.db_insert, "Hidden.java", 205);
  inner.in_closed_library = true;
  wrapper.in_closed_library = true;
  wrapper.children.push_back(std::move(inner));
  AppSpec spec;
  spec.name = "Closed";
  spec.package = "com.test.closed";
  spec.actions.push_back(Action("Store", {std::move(wrapper)}));
  droidsim::Phone phone(droidsim::LgV10(), 6);
  droidsim::App* app = phone.InstallApp(&spec);
  HangDoctor doctor(&phone, app, HangDoctorConfig{});
  Drive(&phone, app, 0, 4);
  EXPECT_EQ(doctor.actions().Find(0)->state, ActionState::kHangBug);
  ASSERT_GE(doctor.local_report().NumBugs(), 1u);
  EXPECT_EQ(doctor.local_report().SortedEntries()[0].api,
            "android.database.sqlite.SQLiteDatabase.insertWithOnConflict");
}

TEST_F(RuntimeTest, MainOnlyModeStillCatchesCpuBugs) {
  AppSpec spec;
  spec.name = "MainOnly";
  spec.package = "com.test.mainonly";
  spec.actions.push_back(Action("Save", {Bug(apis_.gson_tojson)}));
  droidsim::Phone phone(droidsim::GalaxyS3(), 7);  // pre-5.0 device, no render thread use
  droidsim::App* app = phone.InstallApp(&spec);
  HangDoctorConfig config;
  config.main_only = true;
  // Main-only mode needs main-thread thresholds (no render-side subtraction): a long task
  // clock or many faults on the main thread alone.
  config.filter = hangdoctor::SoftHangFilter({
      {telemetry::PerfEventType::kTaskClock, 1.7e8},
      {telemetry::PerfEventType::kPageFaults, 500.0},
  });
  HangDoctor doctor(&phone, app, config);
  Drive(&phone, app, 0, 3);
  EXPECT_EQ(doctor.actions().Find(0)->state, ActionState::kHangBug);
}

TEST_F(RuntimeTest, SecondPhaseOnlyTracesEveryHang) {
  AppSpec spec;
  spec.name = "TestBed";
  spec.package = "com.test.bed";
  spec.actions.push_back(Action("Open", {droidsim::MakeOp(apis_.ui_inflate, "O.java", 5),
                                         droidsim::MakeOp(apis_.ui_list_layout, "O.java", 8)}));
  droidsim::Phone phone(droidsim::LgV10(), 8);
  droidsim::App* app = phone.InstallApp(&spec);
  HangDoctorConfig config;
  config.second_phase_only = true;
  HangDoctor doctor(&phone, app, config);
  Drive(&phone, app, 0, 4);
  int64_t hangs = 0;
  int64_t traced = 0;
  for (const hangdoctor::ExecutionRecord& record : doctor.log()) {
    hangs += record.hang ? 1 : 0;
    traced += record.traced ? 1 : 0;
  }
  EXPECT_GT(hangs, 0);
  EXPECT_EQ(traced, hangs);  // no phase-1 filtering in the test bed
  // And the Diagnoser still prunes the UI hangs: no bugs reported.
  EXPECT_EQ(doctor.local_report().NumBugs(), 0u);
}

TEST_F(RuntimeTest, FleetReportAggregatesAcrossDevices) {
  AppSpec spec;
  spec.name = "Fleet";
  spec.package = "com.test.fleet";
  spec.actions.push_back(Action("Save", {Bug(apis_.gson_tojson)}));
  hangdoctor::HangBugReport fleet;
  hangdoctor::BlockingApiDatabase database;
  for (int device = 0; device < 3; ++device) {
    droidsim::Phone phone(droidsim::LgV10(), 100 + device);
    droidsim::App* app = phone.InstallApp(&spec);
    HangDoctor doctor(&phone, app, HangDoctorConfig{}, &database, &fleet, device);
    Drive(&phone, app, 0, 3);
  }
  ASSERT_EQ(fleet.NumBugs(), 1u);
  EXPECT_EQ(fleet.SortedEntries()[0].devices.size(), 3u);
  EXPECT_TRUE(database.IsKnown("com.google.gson.Gson.toJson"));
}

TEST_F(RuntimeTest, OverheadAccumulatesOnlyWhenMonitoring) {
  AppSpec spec;
  spec.name = "Cost";
  spec.package = "com.test.cost";
  spec.actions.push_back(Action("Open", {droidsim::MakeOp(apis_.ui_set_text, "O.java", 5)}));
  droidsim::Phone phone(droidsim::LgV10(), 9);
  droidsim::App* app = phone.InstallApp(&spec);
  HangDoctor doctor(&phone, app, HangDoctorConfig{});
  Drive(&phone, app, 0, 2);
  simkit::SimDuration after_ui = doctor.overhead().cpu();
  EXPECT_GT(after_ui, 0);  // probes + sessions
  // A sub-100 ms action never pays for stack traces.
  EXPECT_EQ(doctor.stack_samples_taken(), 0);
}

}  // namespace
