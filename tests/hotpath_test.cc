// Hot-path regression suite for the zero-allocation work: the slab event queue is stressed
// against a naive reference model, its memory is shown to be bounded by live events rather
// than cancellation volume, symbol interning is shown to assign identical ids across
// independent runs (the fleet-sharding determinism contract), and the steady-state sampling
// path is shown to perform zero heap allocations.
//
// This suite lives in its own binary because it replaces the global operator new/delete with
// counting versions; keeping that out of the other test binaries avoids any interference.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/droidsim/app.h"
#include "src/droidsim/phone.h"
#include "src/droidsim/stack_sampler.h"
#include "src/droidsim/symbols.h"
#include "src/kernelsim/kernel.h"
#include "src/kernelsim/uarch.h"
#include "src/perfsim/counter_hub.h"
#include "src/simkit/event_queue.h"
#include "src/simkit/rng.h"
#include "src/workload/catalog.h"

namespace {

// ---------------------------------------------------------------------------
// Counting allocator: every global new/delete goes through malloc/free plus an
// atomic counter, so a test can assert a region of code allocated nothing.
std::atomic<int64_t> g_allocations{0};

int64_t AllocationCount() { return g_allocations.load(std::memory_order_relaxed); }

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

// ---------------------------------------------------------------------------
// EventQueue stress: a million random schedule/cancel/pop operations, checked
// against a trivially correct reference model (ordered map over (when, seq)).
TEST(EventQueueStressTest, MatchesReferenceModelOverMillionOps) {
  simkit::EventQueue queue;
  // Reference: (when, seq) -> (payload, id), plus id -> (when, seq) for cancels.
  std::map<std::pair<simkit::SimTime, uint64_t>, std::pair<uint64_t, simkit::EventId>>
      reference;
  std::unordered_map<simkit::EventId, std::pair<simkit::SimTime, uint64_t>> pending;
  std::vector<simkit::EventId> issued_ids;  // includes dead ids, to test stale cancels

  std::vector<uint64_t> popped;
  simkit::Rng rng(0xC0FFEE);
  uint64_t next_payload = 0;
  uint64_t next_seq = 0;

  constexpr int kOps = 1'000'000;
  for (int op = 0; op < kOps; ++op) {
    int64_t dice = rng.UniformInt(0, 99);
    if (dice < 50) {
      // Schedule. A narrow time range forces heavy (when, seq) FIFO tie-breaking.
      simkit::SimTime when = rng.UniformInt(0, 1023);
      uint64_t payload = next_payload++;
      simkit::EventId id =
          queue.ScheduleAt(when, [payload, &popped]() { popped.push_back(payload); });
      reference.emplace(std::make_pair(when, next_seq), std::make_pair(payload, id));
      pending.emplace(id, std::make_pair(when, next_seq));
      ++next_seq;
      issued_ids.push_back(id);
    } else if (dice < 80 && !issued_ids.empty()) {
      // Cancel a random id, possibly one that already ran or was already cancelled.
      simkit::EventId id =
          issued_ids[static_cast<size_t>(rng.UniformInt(0, issued_ids.size() - 1))];
      auto it = pending.find(id);
      bool expect_cancel = it != pending.end();
      EXPECT_EQ(queue.Cancel(id), expect_cancel);
      if (expect_cancel) {
        reference.erase(it->second);
        pending.erase(it);
      }
    } else {
      simkit::SimTime when = 0;
      simkit::EventCallback cb;
      bool got = queue.PopNext(&when, &cb);
      ASSERT_EQ(got, !reference.empty());
      if (!got) {
        continue;
      }
      auto front = reference.begin();
      ASSERT_EQ(when, front->first.first);
      size_t before = popped.size();
      cb();
      ASSERT_EQ(popped.size(), before + 1);
      // The popped payload identifies exactly which event ran: it must be the
      // earliest (when, seq) the reference holds — FIFO among ties.
      ASSERT_EQ(popped.back(), front->second.first);
      pending.erase(front->second.second);
      reference.erase(front);
    }
    ASSERT_EQ(queue.Size(), reference.size());
  }

  // Drain what is left and confirm the full remaining order.
  while (!reference.empty()) {
    simkit::SimTime when = 0;
    simkit::EventCallback cb;
    ASSERT_TRUE(queue.PopNext(&when, &cb));
    auto front = reference.begin();
    EXPECT_EQ(when, front->first.first);
    cb();
    EXPECT_EQ(popped.back(), front->second.first);
    reference.erase(front);
  }
  EXPECT_TRUE(queue.Empty());
  simkit::SimTime when = 0;
  simkit::EventCallback cb;
  EXPECT_FALSE(queue.PopNext(&when, &cb));
}

// Memory must be bounded by the high-water mark of *concurrently pending* events, not by
// how many events were ever scheduled or cancelled. The old implementation kept a growing
// cancelled-id set; the slab + generation design recycles slots, and heap compaction keeps
// stale entries from accumulating even when nothing is ever popped.
TEST(EventQueueStressTest, CancellationMemoryIsBounded) {
  simkit::EventQueue queue;
  constexpr int kLive = 8;
  constexpr int kRounds = 100'000;
  simkit::EventId ids[kLive];
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kLive; ++i) {
      ids[i] = queue.ScheduleAt(round, []() {});
    }
    for (int i = 0; i < kLive; ++i) {
      EXPECT_TRUE(queue.Cancel(ids[i]));
    }
  }
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Size(), 0u);
  // 800k schedules and 800k cancellations later: the slot pool never grew past the
  // concurrent high-water mark, and the heap was compacted down to O(live).
  EXPECT_LE(queue.SlabCapacity(), static_cast<size_t>(kLive));
  EXPECT_LE(queue.HeapSize(), 4u * kLive + 64u);
}

// Interleave schedules, cancels and pops, tracking the high-water mark of concurrently
// live events: the slab must never grow past it.
TEST(EventQueueStressTest, SlabTracksHighWaterMarkUnderChurn) {
  simkit::EventQueue queue;
  simkit::Rng rng(42);
  // payload -> id for every still-live event; callbacks report which payload ran.
  std::unordered_map<uint64_t, simkit::EventId> live;
  uint64_t last_popped = 0;
  uint64_t next_payload = 0;
  size_t high_water = 0;
  for (int op = 0; op < 200'000; ++op) {
    int64_t dice = rng.UniformInt(0, 2);
    if (dice == 0 || live.empty()) {
      uint64_t payload = next_payload++;
      live.emplace(payload, queue.ScheduleAt(rng.UniformInt(0, 1000),
                                             [payload, &last_popped]() {
                                               last_popped = payload;
                                             }));
      high_water = std::max(high_water, live.size());
    } else if (dice == 1) {
      auto pick = live.begin();
      EXPECT_TRUE(queue.Cancel(pick->second));
      live.erase(pick);
    } else {
      simkit::SimTime when = 0;
      simkit::EventCallback cb;
      ASSERT_TRUE(queue.PopNext(&when, &cb));
      cb();
      ASSERT_EQ(live.erase(last_popped), 1u);
    }
    ASSERT_EQ(queue.Size(), live.size());
  }
  EXPECT_LE(queue.SlabCapacity(), high_water);
}

// ---------------------------------------------------------------------------
// Symbol interning determinism: the id assignment walks the AppSpec in declaration order,
// so two independently constructed phones/apps — different seeds, different runs, different
// fleet shards — produce byte-identical id -> frame tables. This is what keeps fleet
// aggregation with --jobs=N bit-identical to --jobs=1.
TEST(SymbolTableDeterminismTest, SameSpecYieldsSameIdsAcrossPhones) {
  workload::Catalog catalog;
  for (const droidsim::AppSpec* spec : catalog.study_apps()) {
    droidsim::Phone phone_a(droidsim::LgV10(), /*seed=*/1);
    droidsim::Phone phone_b(droidsim::LgV10(), /*seed=*/987654321);
    droidsim::App* app_a = phone_a.InstallApp(spec);
    droidsim::App* app_b = phone_b.InstallApp(spec);

    const droidsim::SymbolTable& sym_a = app_a->symbols();
    const droidsim::SymbolTable& sym_b = app_b->symbols();
    ASSERT_GT(sym_a.size(), 0u) << spec->package;
    ASSERT_EQ(sym_a.size(), sym_b.size()) << spec->package;
    for (telemetry::FrameId id = 0; id < sym_a.size(); ++id) {
      const telemetry::StackFrame& fa = sym_a.Frame(id);
      const telemetry::StackFrame& fb = sym_b.Frame(id);
      ASSERT_EQ(fa.function, fb.function) << spec->package << " id " << id;
      ASSERT_EQ(fa.clazz, fb.clazz) << spec->package << " id " << id;
      ASSERT_EQ(fa.file, fb.file) << spec->package << " id " << id;
      ASSERT_EQ(fa.line, fb.line) << spec->package << " id " << id;
      ASSERT_EQ(sym_a.IsUi(id), sym_b.IsUi(id)) << spec->package << " id " << id;
    }
  }
}

TEST(SymbolTableDeterminismTest, InternDeduplicatesByContent) {
  droidsim::SymbolTable symbols;
  telemetry::StackFrame frame{"clean", "org.htmlcleaner.HtmlCleaner", "HtmlSanitizer.java", 25};
  telemetry::FrameId id = symbols.Intern(frame);
  EXPECT_EQ(symbols.Intern(frame), id);
  telemetry::StackFrame other = frame;
  other.line = 26;
  EXPECT_NE(symbols.Intern(other), id);
  EXPECT_EQ(symbols.size(), 2u);
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state. After warm-up, one full sampler arm cycle
// (TakeSample + slab reschedule) and a burst of CounterHub kernel events must not
// touch the heap at all.
class ZeroAllocationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = std::make_unique<workload::Catalog>();
    phone_ = std::make_unique<droidsim::Phone>(droidsim::LgV10(), /*seed=*/7);
    app_ = phone_->InstallApp(catalog_->FindApp("K9-Mail"));
    // Run the phone for a while so every pool in the hot path reaches steady state:
    // the event-queue slab and heap, the counter hub's dense thread states and noise
    // rings, and the kernel's bookkeeping.
    phone_->RunFor(simkit::Seconds(2));
  }

  std::unique_ptr<workload::Catalog> catalog_;
  std::unique_ptr<droidsim::Phone> phone_;
  droidsim::App* app_ = nullptr;
};

TEST_F(ZeroAllocationTest, WarmSamplerCollectionCycleDoesNotAllocate) {
  droidsim::StackSampler sampler(&phone_->sim(), &app_->main_looper());
  // Warm-up cycle: allocates the sample slot and warms the queue's free list.
  sampler.StartCollection();
  sampler.StopCollection();
  sampler.StartCollection();
  sampler.StopCollection();

  int64_t before = AllocationCount();
  sampler.StartCollection();  // one TakeSample + one slab ScheduleAfter
  std::span<const telemetry::StackTrace> traces = sampler.StopCollection();  // O(1) Cancel
  int64_t after = AllocationCount();
  EXPECT_EQ(after - before, 0) << "steady-state sampler cycle must not allocate";
  EXPECT_EQ(traces.size(), 1u);
}

TEST_F(ZeroAllocationTest, WarmCounterHubEventsDoNotAllocate) {
  perfsim::CounterHub& hub = phone_->counter_hub();
  const kernelsim::Thread& main_thread = phone_->kernel().GetThread(app_->main_tid());
  kernelsim::MicroArchProfile uarch;  // an arbitrary profile; any charge takes the same path

  // Warm-up: the thread already has dense state from the 2 s run, but charge once more
  // explicitly so the first measured iteration cannot be the one that grows the vector.
  hub.OnCpuCharge(main_thread, simkit::Microseconds(50), uarch);
  hub.OnContextSwitch(main_thread, /*voluntary=*/true, 1);
  hub.OnPageFault(main_thread, /*major=*/false, 1);

  int64_t before = AllocationCount();
  for (int i = 0; i < 1000; ++i) {
    hub.OnCpuCharge(main_thread, simkit::Microseconds(50), uarch);
    hub.OnContextSwitch(main_thread, /*voluntary=*/true, 1);
    hub.OnPageFault(main_thread, /*major=*/false, 1);
    hub.OnCpuMigration(main_thread);
  }
  int64_t after = AllocationCount();
  EXPECT_EQ(after - before, 0) << "warm counter-hub events must not allocate";
}

TEST_F(ZeroAllocationTest, WarmEventQueueCycleDoesNotAllocate) {
  simkit::EventQueue queue;
  int sink = 0;
  // Warm-up: a few cycles so the slab and the heap vector reach their steady-state
  // capacity (cancelled entries linger as stale heap entries until a pop drains them,
  // so the working set is a couple of entries, not one).
  for (int i = 0; i < 8; ++i) {
    simkit::EventId warm = queue.ScheduleAt(10 + i, [&sink]() { ++sink; });
    EXPECT_TRUE(queue.Cancel(warm));
  }
  {
    simkit::EventId warm = queue.ScheduleAt(100, [&sink]() { ++sink; });
    simkit::SimTime when = 0;
    simkit::EventCallback cb;
    EXPECT_TRUE(queue.PopNext(&when, &cb));
    (void)warm;
    cb();
  }
  sink = 0;

  int64_t before = AllocationCount();
  for (int i = 0; i < 1000; ++i) {
    simkit::EventId id = queue.ScheduleAt(i, [&sink]() { ++sink; });
    if ((i & 1) == 0) {
      EXPECT_TRUE(queue.Cancel(id));
    } else {
      simkit::SimTime when = 0;
      simkit::EventCallback cb;
      EXPECT_TRUE(queue.PopNext(&when, &cb));
      cb();
    }
  }
  int64_t after = AllocationCount();
  EXPECT_EQ(after - before, 0) << "warm schedule/cancel/pop cycles must not allocate";
  EXPECT_EQ(sink, 500);
}

}  // namespace
