// Shared-knowledge-base fleet equivalence: RunFleet with shared_kb must produce output
// bit-identical to KB-off service mode AND to the per-job oracle, for all 16 study apps, at
// every epoch length — the KB may only ever save work (skipped diagnoser runs), never change
// a verdict, a report, or a discovery list.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/hangdoctor/blocking_api_db.h"
#include "src/workload/catalog.h"
#include "src/workload/experiment.h"
#include "src/workload/fleet.h"

namespace {

const workload::Catalog& SharedCatalog() {
  static const workload::Catalog* catalog = new workload::Catalog();
  return *catalog;
}

// One job per study app — all 16 — on one device each, sharing one seed catalog.
std::vector<workload::FleetJob> StudyFleet(const hangdoctor::BlockingApiDatabase* known_db) {
  const workload::Catalog& catalog = SharedCatalog();
  std::vector<workload::FleetJob> jobs;
  for (const droidsim::AppSpec* spec : catalog.study_apps()) {
    workload::FleetJob job;
    job.spec = spec;
    job.profile = droidsim::LgV10();
    job.seed = workload::FleetSeed(4242, jobs.size());
    job.session = simkit::Seconds(30);
    job.device_id = static_cast<int32_t>(jobs.size() % 4);
    job.known_db = known_db;
    jobs.push_back(job);
  }
  return jobs;
}

void ExpectStatsEqual(const workload::DetectionStats& a, const workload::DetectionStats& b,
                      const std::string& label) {
  EXPECT_EQ(a.true_positives, b.true_positives) << label;
  EXPECT_EQ(a.false_positives, b.false_positives) << label;
  EXPECT_EQ(a.false_negatives, b.false_negatives) << label;
  EXPECT_EQ(a.bug_hangs, b.bug_hangs) << label;
  EXPECT_EQ(a.ui_hangs, b.ui_hangs) << label;
  EXPECT_DOUBLE_EQ(a.overhead_pct, b.overhead_pct) << label;
}

// Full bit-for-bit comparison of every output that is part of the determinism contract.
// FleetJobResult::kb and FleetSummary::kb are deliberately NOT compared: hit counts depend
// on which epoch a session's snapshot came from (scheduling), the verdicts never do.
void ExpectSummariesEqual(const workload::FleetSummary& oracle,
                          const workload::FleetSummary& kb_run, const std::string& label) {
  ASSERT_EQ(oracle.jobs.size(), kb_run.jobs.size()) << label;
  EXPECT_EQ(oracle.failed, kb_run.failed) << label;
  ExpectStatsEqual(oracle.merged_stats, kb_run.merged_stats, label + " merged_stats");
  EXPECT_EQ(oracle.merged_report.Render(4), kb_run.merged_report.Render(4)) << label;
  EXPECT_EQ(oracle.discovered, kb_run.discovered) << label;
  for (size_t i = 0; i < oracle.jobs.size(); ++i) {
    const workload::FleetJobResult& a = oracle.jobs[i];
    const workload::FleetJobResult& b = kb_run.jobs[i];
    const std::string job_label = label + " job " + std::to_string(i);
    EXPECT_EQ(a.ok, b.ok) << job_label;
    EXPECT_EQ(a.app_package, b.app_package) << job_label;
    ExpectStatsEqual(a.stats, b.stats, job_label + " stats");
    EXPECT_EQ(a.report.Render(4), b.report.Render(4)) << job_label;
    EXPECT_EQ(a.discovered, b.discovered) << job_label;
    EXPECT_DOUBLE_EQ(a.overhead_pct, b.overhead_pct) << job_label;
    EXPECT_EQ(a.stack_samples, b.stack_samples) << job_label;
    EXPECT_EQ(a.stream_ok, b.stream_ok) << job_label;
    EXPECT_EQ(a.Describe(), b.Describe()) << job_label;
  }
}

TEST(KbFleetTest, SharedKbMatchesOracleAndKbOffAtEveryEpochLength) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  ASSERT_EQ(catalog.study_apps().size(), 16u);
  std::vector<workload::FleetJob> jobs = StudyFleet(&known_db);

  workload::FleetOptions oracle_options;
  oracle_options.jobs = 2;
  oracle_options.service = false;
  workload::FleetSummary oracle = workload::RunFleet(jobs, oracle_options);
  ASSERT_EQ(oracle.failed, 0u);

  workload::FleetOptions off_options;
  off_options.jobs = 2;
  workload::FleetSummary kb_off = workload::RunFleet(jobs, off_options);
  ExpectSummariesEqual(oracle, kb_off, "kb-off vs oracle");
  EXPECT_EQ(kb_off.kb.publishes, 0);  // no KB, no stats

  for (int64_t epoch : {int64_t{1}, int64_t{16}, int64_t{0}}) {
    workload::FleetOptions options;
    options.jobs = 2;
    options.shared_kb = true;
    options.kb_epoch_sessions = epoch;
    workload::FleetSummary kb_on = workload::RunFleet(jobs, options);
    ExpectSummariesEqual(oracle, kb_on, "kb-on epoch=" + std::to_string(epoch));
    // The KB really ran: every session was absorbed and the final publish happened.
    EXPECT_EQ(kb_on.kb.sessions_absorbed, 16) << epoch;
    EXPECT_GE(kb_on.kb.publishes, 1) << epoch;
    EXPECT_GE(kb_on.kb.epoch, 1u) << epoch;
    EXPECT_EQ(kb_on.kb.discovered, oracle.discovered.size()) << epoch;
  }
}

TEST(KbFleetTest, SharedKbWorksWithoutASeedCatalog) {
  // Null known_db on every job: the KB seeds empty; equivalence must still hold.
  std::vector<workload::FleetJob> jobs = StudyFleet(nullptr);
  jobs.resize(4);

  workload::FleetOptions oracle_options;
  oracle_options.jobs = 2;
  oracle_options.service = false;
  workload::FleetSummary oracle = workload::RunFleet(jobs, oracle_options);

  workload::FleetOptions options;
  options.jobs = 2;
  options.shared_kb = true;
  options.kb_epoch_sessions = 1;
  workload::FleetSummary kb_on = workload::RunFleet(jobs, options);
  ExpectSummariesEqual(oracle, kb_on, "kb-on no-seed");
}

TEST(KbFleetTest, ServiceModeRejectsMixedSeedCatalogs) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  std::vector<workload::FleetJob> jobs = StudyFleet(&known_db);
  jobs.resize(2);
  jobs[1].known_db = nullptr;  // one service, two seeds: no single source of truth

  workload::FleetOptions options;
  options.jobs = 1;
  EXPECT_THROW(workload::RunFleet(jobs, options), std::invalid_argument);
  // The per-job oracle path still supports heterogeneous catalogs.
  options.service = false;
  workload::FleetSummary summary = workload::RunFleet(jobs, options);
  EXPECT_EQ(summary.failed, 0u);
}

TEST(KbFleetTest, KbEpochFlagParses) {
  const char* argv_default[] = {"t"};
  EXPECT_EQ(workload::ResolveKbEpoch(1, const_cast<char**>(argv_default)), 16);
  const char* argv_set[] = {"t", "--kb-epoch=64"};
  EXPECT_EQ(workload::ResolveKbEpoch(2, const_cast<char**>(argv_set)), 64);
  const char* argv_zero[] = {"t", "--kb-epoch=0"};
  EXPECT_EQ(workload::ResolveKbEpoch(2, const_cast<char**>(argv_zero)), 0);
  const char* argv_bad[] = {"t", "--kb-epoch=-3"};
  EXPECT_THROW(workload::ResolveKbEpoch(2, const_cast<char**>(argv_bad)),
               std::invalid_argument);
}

}  // namespace
