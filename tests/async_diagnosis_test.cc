// Waiting-chain diagnosis tests (DESIGN.md section 3.8): for every async study app — a soft
// hang that happens on a worker thread behind a future the main thread blocks on — the
// diagnosis must name the async culprit frame, never the Future.get frame the main-thread
// traces actually show, and keep the wait site as provenance. The verdicts must be
// bit-identical across every deployment shape: worker counts, pipelined-ingest thread
// counts, service shard counts, with and without the shared knowledge base, and under
// record/replay.
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/hangdoctor/report.h"
#include "src/workload/catalog.h"
#include "src/workload/fleet.h"

namespace {

const workload::Catalog& SharedCatalog() {
  static const workload::Catalog* catalog = new workload::Catalog();
  return *catalog;
}

std::string TempPath(const std::string& leaf) {
  std::filesystem::path dir = std::filesystem::temp_directory_path() / "hd_async_diagnosis";
  std::filesystem::create_directories(dir);
  return (dir / leaf).string();
}

// One device per async study app; app i owns job index i.
std::vector<workload::FleetJob> AsyncFleet(const hangdoctor::BlockingApiDatabase* known_db) {
  const workload::Catalog& catalog = SharedCatalog();
  std::vector<workload::FleetJob> jobs;
  for (const droidsim::AppSpec* spec : catalog.async_apps()) {
    workload::FleetJob job;
    job.spec = spec;
    job.profile = droidsim::LgV10();
    job.seed = 5000 + static_cast<uint64_t>(spec->downloads % 97);
    job.session = simkit::Seconds(60);
    job.device_id = 0;
    job.known_db = known_db;
    jobs.push_back(job);
  }
  return jobs;
}

// Every diagnosis-observable output of a fleet run, flattened for equality comparison.
std::string Fingerprint(const workload::FleetSummary& summary) {
  std::ostringstream out;
  out << "failed=" << summary.failed << "\n";
  out << summary.merged_report.Render(1);
  for (const std::string& api : summary.discovered) {
    out << "discovered " << api << "\n";
  }
  for (const workload::FleetJobResult& result : summary.jobs) {
    out << result.app_package << " samples=" << result.stack_samples << "\n";
    out << result.report.Render(1);
  }
  return out.str();
}

TEST(AsyncDiagnosisTest, EveryAsyncAppAttributesTheAsyncCulpritNotTheWaitFrame) {
  const workload::Catalog& catalog = SharedCatalog();
  ASSERT_GE(catalog.async_apps().size(), 3u);
  ASSERT_EQ(catalog.async_bugs().size(), catalog.async_apps().size());
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  std::vector<workload::FleetJob> jobs = AsyncFleet(&known_db);
  workload::FleetSummary summary = workload::RunFleet(jobs, {.jobs = 1, .shards = 1});
  ASSERT_EQ(summary.failed, 0u);

  const std::string wait_api = catalog.std_apis().future_get->FullName();
  for (size_t i = 0; i < catalog.async_apps().size(); ++i) {
    const droidsim::AppSpec* spec = catalog.async_apps()[i];
    std::vector<workload::BugSpec> expected = catalog.BugsOf(spec->name);
    ASSERT_EQ(expected.size(), 1u) << spec->name;
    hangdoctor::HangBugReport report = summary.MergeReports(i, i + 1);
    const std::vector<hangdoctor::BugReportEntry> entries = report.SortedEntries();
    ASSERT_FALSE(entries.empty()) << spec->name << ": no hangs diagnosed";

    const hangdoctor::BugReportEntry* match = nullptr;
    for (const hangdoctor::BugReportEntry& entry : entries) {
      // The wait frame must never be pinned as a culprit.
      EXPECT_NE(entry.api, wait_api)
          << spec->name << ": wait frame misattributed at " << entry.file << ":" << entry.line;
      if (entry.api == expected[0].api && entry.file == expected[0].file &&
          entry.line == expected[0].line) {
        match = &entry;
      }
    }
    ASSERT_NE(match, nullptr) << spec->name << ": async culprit " << expected[0].api << "@"
                              << expected[0].file << ":" << expected[0].line
                              << " not diagnosed";
    EXPECT_GT(match->occurrences, 0) << spec->name;
    EXPECT_EQ(match->self_developed, expected[0].self_developed) << spec->name;
    // Waiting-chain provenance: the diagnosis walked through the main thread's wait site.
    ASSERT_FALSE(match->wait_site.empty()) << spec->name;
    EXPECT_NE(match->wait_site.find(wait_api + "@"), std::string::npos)
        << spec->name << ": wait_site = " << match->wait_site;
  }
}

TEST(AsyncDiagnosisTest, VerdictsAreBitIdenticalAcrossJobsThreadsAndShards) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  std::vector<workload::FleetJob> jobs = AsyncFleet(&known_db);
  const std::string baseline =
      Fingerprint(workload::RunFleet(jobs, {.jobs = 1, .shards = 1}));

  for (int32_t workers : {1, 8}) {
    for (int32_t threads : {1, 4}) {
      for (int32_t shards : {1, 4, 7}) {
        workload::FleetOptions options;
        options.jobs = workers;
        options.threads = threads;
        options.shards = shards;
        const std::string label = "jobs=" + std::to_string(workers) +
                                  " threads=" + std::to_string(threads) +
                                  " shards=" + std::to_string(shards);
        EXPECT_EQ(Fingerprint(workload::RunFleet(jobs, options)), baseline) << label;
      }
    }
  }
}

TEST(AsyncDiagnosisTest, SharedKnowledgeBaseDoesNotChangeVerdicts) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  std::vector<workload::FleetJob> jobs = AsyncFleet(&known_db);
  const std::string baseline =
      Fingerprint(workload::RunFleet(jobs, {.jobs = 1, .shards = 1}));

  for (int64_t epoch : {int64_t{1}, int64_t{16}}) {
    workload::FleetOptions options;
    options.jobs = 8;
    options.threads = 4;
    options.shards = 7;
    options.shared_kb = true;
    options.kb_epoch_sessions = epoch;
    EXPECT_EQ(Fingerprint(workload::RunFleet(jobs, options)), baseline)
        << "shared_kb epoch=" << epoch;
  }
}

TEST(AsyncDiagnosisTest, RecordedAsyncFleetReplaysBitIdentically) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  std::vector<workload::FleetJob> plain = AsyncFleet(&known_db);
  std::vector<workload::FleetJob> recorded = AsyncFleet(&known_db);
  for (size_t i = 0; i < recorded.size(); ++i) {
    recorded[i].record_path = TempPath("async_job_" + std::to_string(i) + ".hdsl");
  }

  const std::string baseline = Fingerprint(workload::RunFleet(plain, {.jobs = 1}));
  workload::FleetSummary taped = workload::RunFleet(recorded, {.jobs = 8});
  EXPECT_EQ(Fingerprint(taped), baseline) << "recording must be a passive tap";

  std::vector<std::string> paths;
  for (const workload::FleetJob& job : recorded) {
    paths.push_back(job.record_path);
  }
  for (int32_t shards : {1, 4, 7}) {
    workload::FleetOptions options;
    options.jobs = 2;
    options.shards = shards;
    workload::FleetSummary replayed = workload::ReplayFleet(paths, options, &known_db);
    EXPECT_EQ(Fingerprint(replayed), baseline) << "replay shards=" << shards;
  }
}

}  // namespace
