// Unit tests for the two shared detector outputs: the BlockingApiDatabase (seed / discover /
// copy semantics the fleet runner's per-job private copies rely on) and the HangBugReport
// (record / merge / ordering / rendering, including string materialization from interned
// FrameId stack samples via the Trace Analyzer).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/hangdoctor/blocking_api_db.h"
#include "src/hangdoctor/report.h"
#include "src/hangdoctor/trace_analyzer.h"
#include "src/telemetry/symbols.h"

namespace {

TEST(BlockingApiDatabaseTest, SeedKnownIsQueryableAndNotADiscovery) {
  hangdoctor::BlockingApiDatabase db;
  db.SeedKnown("android.graphics.BitmapFactory.decodeFile");
  EXPECT_TRUE(db.IsKnown("android.graphics.BitmapFactory.decodeFile"));
  EXPECT_FALSE(db.IsKnown("android.hardware.Camera.open"));
  EXPECT_TRUE(db.discovered().empty());
  EXPECT_EQ(db.size(), 1u);
}

TEST(BlockingApiDatabaseTest, AddDiscoveredDeduplicatesAndKeepsInsertionOrder) {
  hangdoctor::BlockingApiDatabase db;
  db.SeedKnown("known.Api.call");
  EXPECT_FALSE(db.AddDiscovered("known.Api.call"));  // already known: not a discovery
  EXPECT_TRUE(db.AddDiscovered("b.Second.call"));
  EXPECT_TRUE(db.AddDiscovered("a.First.call"));
  EXPECT_FALSE(db.AddDiscovered("b.Second.call"));  // repeat diagnosis: recorded once
  EXPECT_TRUE(db.IsKnown("a.First.call"));
  // discovered() preserves discovery order (not sorted), one entry per API.
  const std::vector<std::string> expected = {"b.Second.call", "a.First.call"};
  EXPECT_EQ(db.discovered(), expected);
  EXPECT_EQ(db.size(), 3u);
}

TEST(BlockingApiDatabaseTest, CopiesAreIndependent) {
  // The fleet runner hands each job a private copy of the known database; a job's
  // discoveries must never leak into the original or into sibling copies.
  hangdoctor::BlockingApiDatabase original;
  original.SeedKnown("known.Api.call");

  hangdoctor::BlockingApiDatabase job_a = original;
  hangdoctor::BlockingApiDatabase job_b = original;
  EXPECT_TRUE(job_a.AddDiscovered("job_a.Only.call"));
  EXPECT_TRUE(job_b.AddDiscovered("job_b.Only.call"));

  EXPECT_FALSE(original.IsKnown("job_a.Only.call"));
  EXPECT_FALSE(original.IsKnown("job_b.Only.call"));
  EXPECT_TRUE(original.discovered().empty());
  EXPECT_FALSE(job_a.IsKnown("job_b.Only.call"));
  EXPECT_FALSE(job_b.IsKnown("job_a.Only.call"));
  EXPECT_EQ(job_a.discovered(), std::vector<std::string>{"job_a.Only.call"});
  EXPECT_EQ(job_b.discovered(), std::vector<std::string>{"job_b.Only.call"});
}

TEST(BlockingApiDatabaseTest, CopyCarriesPriorDiscoveries) {
  hangdoctor::BlockingApiDatabase original;
  ASSERT_TRUE(original.AddDiscovered("early.Find.call"));
  hangdoctor::BlockingApiDatabase copy = original;
  EXPECT_TRUE(copy.IsKnown("early.Find.call"));
  EXPECT_EQ(copy.discovered(), original.discovered());
  EXPECT_FALSE(copy.AddDiscovered("early.Find.call"));
}

hangdoctor::Diagnosis MakeDiagnosis(const std::string& clazz, const std::string& function,
                                    const std::string& file, int32_t line,
                                    bool self_developed = false) {
  hangdoctor::Diagnosis diagnosis;
  diagnosis.valid = true;
  diagnosis.culprit.clazz = clazz;
  diagnosis.culprit.function = function;
  diagnosis.culprit.file = file;
  diagnosis.culprit.line = line;
  diagnosis.is_self_developed = self_developed;
  diagnosis.occurrence_factor = 1.0;
  diagnosis.samples_used = 5;
  return diagnosis;
}

TEST(HangBugReportTest, RecordAggregatesPerBug) {
  hangdoctor::HangBugReport report;
  hangdoctor::Diagnosis bug = MakeDiagnosis("org.app.Db", "query", "Db.java", 42);
  report.Record("org.app", bug, simkit::Milliseconds(200), /*device_id=*/0);
  report.Record("org.app", bug, simkit::Milliseconds(400), /*device_id=*/1);
  report.Record("org.app", bug, simkit::Milliseconds(300), /*device_id=*/1);
  ASSERT_EQ(report.NumBugs(), 1u);

  const hangdoctor::BugReportEntry entry = report.SortedEntries()[0];
  EXPECT_EQ(entry.api, "org.app.Db.query");
  EXPECT_EQ(entry.file, "Db.java");
  EXPECT_EQ(entry.line, 42);
  EXPECT_EQ(entry.occurrences, 3);
  EXPECT_EQ(entry.devices.size(), 2u);
  EXPECT_EQ(entry.max_hang, simkit::Milliseconds(400));
  EXPECT_DOUBLE_EQ(entry.MeanHangMs(), 300.0);
}

TEST(HangBugReportTest, MergeFoldsDevicesAndSortsByCoverage) {
  hangdoctor::Diagnosis wide = MakeDiagnosis("a.Wide", "call", "Wide.java", 1);
  hangdoctor::Diagnosis narrow = MakeDiagnosis("b.Narrow", "call", "Narrow.java", 2);

  hangdoctor::HangBugReport device0;
  device0.Record("org.app", wide, simkit::Milliseconds(150), 0);
  device0.Record("org.app", narrow, simkit::Milliseconds(900), 0);
  device0.Record("org.app", narrow, simkit::Milliseconds(900), 0);

  hangdoctor::HangBugReport device1;
  device1.Record("org.app", wide, simkit::Milliseconds(250), 1);

  hangdoctor::HangBugReport fleet;
  fleet.Merge(device0);
  fleet.Merge(device1);
  ASSERT_EQ(fleet.NumBugs(), 2u);

  // Sorted by device coverage first: `wide` (2 devices) outranks `narrow` (2 occurrences
  // but 1 device).
  std::vector<hangdoctor::BugReportEntry> entries = fleet.SortedEntries();
  EXPECT_EQ(entries[0].api, "a.Wide.call");
  EXPECT_EQ(entries[0].devices.size(), 2u);
  EXPECT_EQ(entries[1].api, "b.Narrow.call");
  EXPECT_EQ(entries[1].occurrences, 2);
  EXPECT_EQ(entries[1].max_hang, simkit::Milliseconds(900));
}

TEST(HangBugReportTest, RenderMaterializesApiAndSite) {
  hangdoctor::HangBugReport report;
  report.Record("org.app", MakeDiagnosis("org.app.Net", "fetch", "Net.java", 7),
                simkit::Milliseconds(500), 0);
  std::string rendered = report.Render(/*total_devices=*/4);
  EXPECT_NE(rendered.find("org.app.Net.fetch"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("Net.java"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("25"), std::string::npos) << rendered;  // 1 of 4 devices = 25%
}

TEST(HangBugReportTest, RenderMaterializesInternedFrames) {
  // End-to-end string materialization: stacks built from dense FrameIds, analyzed by the
  // Trace Analyzer against the owning SymbolTable, recorded, and rendered as strings.
  telemetry::SymbolTable symbols;
  telemetry::FrameId looper = symbols.Intern(
      {"loop", "android.os.Looper", "Looper.java", 160}, /*is_ui=*/false);
  telemetry::FrameId decode = symbols.Intern(
      {"decodeStream", "android.graphics.BitmapFactory", "BitmapFactory.java", 623},
      /*is_ui=*/false);

  std::vector<telemetry::StackTrace> traces(6);
  for (telemetry::StackTrace& trace : traces) {
    trace.frames = {looper, decode};  // innermost last
  }
  hangdoctor::TraceAnalyzer analyzer;
  hangdoctor::Diagnosis diagnosis = analyzer.Analyze(traces, symbols, "org.other.app");
  ASSERT_TRUE(diagnosis.valid);
  EXPECT_FALSE(diagnosis.is_ui);
  EXPECT_FALSE(diagnosis.is_self_developed);
  EXPECT_EQ(diagnosis.culprit.clazz, "android.graphics.BitmapFactory");

  hangdoctor::HangBugReport report;
  report.Record("org.other.app", diagnosis, simkit::Milliseconds(350), 2);
  std::string rendered = report.Render(/*total_devices=*/4);
  EXPECT_NE(rendered.find("android.graphics.BitmapFactory.decodeStream"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("BitmapFactory.java"), std::string::npos) << rendered;
}

}  // namespace
