// HDSL v3 multiplexed-log tests (src/hosts/mux_log.h). The load-bearing property: ANY
// interleaving of N recorded v2 session logs muxes into one v3 stream and demuxes back to
// the original logs byte-identically — the container adds framing, never touches payload
// bytes. On top of that: replaying a v3 stream through a DetectorService reproduces the
// per-log ReplaySession results bit-for-bit at any shard count, and malformed containers are
// rejected with an error instead of feeding garbage downstream.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/hangdoctor/detector_service.h"
#include "src/hosts/hang_doctor.h"
#include "src/hosts/mux_log.h"
#include "src/hosts/replay_host.h"
#include "src/hosts/session_log.h"
#include "src/workload/catalog.h"
#include "src/workload/experiment.h"

namespace {

const workload::Catalog& SharedCatalog() {
  static const workload::Catalog* catalog = new workload::Catalog();
  return *catalog;
}

std::string TempPath(const std::string& leaf) {
  std::filesystem::path dir = std::filesystem::temp_directory_path() / "hd_mux";
  std::filesystem::create_directories(dir);
  return (dir / leaf).string();
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Records one short live session for study app `app_index` and returns its v2 log bytes.
std::string RecordSessionLog(size_t app_index, uint64_t seed) {
  const workload::Catalog& catalog = SharedCatalog();
  const droidsim::AppSpec* spec =
      catalog.study_apps()[app_index % catalog.study_apps().size()];
  const std::string path =
      TempPath("donor_" + std::to_string(app_index) + "_" + std::to_string(seed) + ".hdsl");
  workload::SingleAppHarness harness(droidsim::LgV10(), spec, seed);
  hangdoctor::SessionLogWriter writer(path, hangdoctor::HangDoctorConfig{});
  EXPECT_TRUE(writer.ok()) << path;
  {
    hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(),
                                  hangdoctor::HangDoctorConfig{}, /*database=*/nullptr,
                                  /*fleet_report=*/nullptr,
                                  /*device_id=*/static_cast<int32_t>(app_index), &writer);
    (void)doctor;
    harness.RunUserSession(simkit::Seconds(15));
  }
  workload::TraceUsage usage = harness.Usage();
  writer.WriteTraceUsage(usage.cpu, usage.bytes);
  writer.Finish();
  return FileBytes(path);
}

// The shared test corpus: three recorded sessions under non-contiguous ids (ids and
// hash-order deliberately unrelated, so shard routing is exercised).
std::vector<hangdoctor::SessionLogSlice> Corpus() {
  static const std::vector<hangdoctor::SessionLogSlice>* corpus = [] {
    auto* slices = new std::vector<hangdoctor::SessionLogSlice>;
    const uint64_t ids[] = {7, 3, 40};
    for (size_t i = 0; i < 3; ++i) {
      slices->push_back({telemetry::SessionId{ids[i]}, RecordSessionLog(i, 9100 + i)});
    }
    return slices;
  }();
  return *corpus;
}

// Builds a schedule where session `pick(pending_sessions)` emits its next frame each step.
template <typename Picker>
std::vector<size_t> BuildSchedule(const std::vector<size_t>& frame_counts, Picker pick) {
  std::vector<size_t> remaining = frame_counts;
  std::vector<size_t> schedule;
  for (bool any = true; any;) {
    std::vector<size_t> pending;
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (remaining[i] > 0) {
        pending.push_back(i);
      }
    }
    any = !pending.empty();
    if (any) {
      size_t chosen = pick(pending);
      --remaining[chosen];
      schedule.push_back(chosen);
    }
  }
  return schedule;
}

std::vector<size_t> FrameCounts(const std::vector<hangdoctor::SessionLogSlice>& sessions) {
  std::vector<size_t> counts;
  for (const hangdoctor::SessionLogSlice& slice : sessions) {
    size_t count = 0;
    std::string error;
    EXPECT_TRUE(hangdoctor::MuxFrameCount(slice.bytes, &count, &error)) << error;
    counts.push_back(count);
  }
  return counts;
}

// Muxes under `schedule`, demuxes, and checks every reconstructed log is byte-identical.
void RoundTrip(const std::vector<hangdoctor::SessionLogSlice>& sessions,
               const std::vector<size_t>& schedule, const std::string& label) {
  std::string stream;
  std::string error;
  ASSERT_TRUE(hangdoctor::MuxSessionLogs(sessions, schedule, &stream, &error))
      << label << ": " << error;
  std::vector<hangdoctor::SessionLogSlice> back;
  ASSERT_TRUE(hangdoctor::DemuxSessionLog(stream, &back, &error)) << label << ": " << error;
  ASSERT_EQ(back.size(), sessions.size()) << label;
  // Demux returns sessions in open-frame order; match by id.
  for (const hangdoctor::SessionLogSlice& original : sessions) {
    bool found = false;
    for (const hangdoctor::SessionLogSlice& rebuilt : back) {
      if (rebuilt.id == original.id) {
        EXPECT_EQ(rebuilt.bytes, original.bytes)
            << label << ": session " << original.id.value << " not byte-identical";
        found = true;
      }
    }
    EXPECT_TRUE(found) << label << ": session " << original.id.value << " lost";
  }
}

TEST(MuxLogTest, AnyInterleavingRoundTripsByteIdentically) {
  std::vector<hangdoctor::SessionLogSlice> sessions = Corpus();
  std::vector<size_t> counts = FrameCounts(sessions);

  // Round-robin (the empty-schedule default).
  RoundTrip(sessions, {}, "round_robin");
  // Fully sequential: all of session 0, then 1, then 2 — degenerate but legal interleaving.
  RoundTrip(sessions, BuildSchedule(counts, [](const std::vector<size_t>& p) { return p[0]; }),
            "sequential");
  // Reverse sequential.
  RoundTrip(sessions,
            BuildSchedule(counts, [](const std::vector<size_t>& p) { return p.back(); }),
            "reverse_sequential");
  // Seeded random interleavings (mt19937 output is specified, so these are reproducible).
  for (uint32_t seed = 1; seed <= 8; ++seed) {
    std::mt19937 rng(seed);
    RoundTrip(sessions,
              BuildSchedule(counts,
                            [&rng](const std::vector<size_t>& p) { return p[rng() % p.size()]; }),
              "random_seed_" + std::to_string(seed));
  }
}

TEST(MuxLogTest, SingleSessionAndEmptyStreamRoundTrip) {
  std::vector<hangdoctor::SessionLogSlice> one = {Corpus()[0]};
  RoundTrip(one, {}, "single");

  std::string stream;
  std::string error;
  ASSERT_TRUE(hangdoctor::MuxSessionLogs({}, {}, &stream, &error)) << error;
  std::vector<hangdoctor::SessionLogSlice> back;
  ASSERT_TRUE(hangdoctor::DemuxSessionLog(stream, &back, &error)) << error;
  EXPECT_TRUE(back.empty());
}

TEST(MuxLogTest, MuxRejectsBadInputs) {
  std::vector<hangdoctor::SessionLogSlice> sessions = Corpus();
  std::string stream;
  std::string error;

  // Duplicate session id.
  std::vector<hangdoctor::SessionLogSlice> dup = {sessions[0], sessions[1]};
  dup[1].id = dup[0].id;
  EXPECT_FALSE(hangdoctor::MuxSessionLogs(dup, {}, &stream, &error));
  EXPECT_FALSE(error.empty());

  // Malformed member log.
  std::vector<hangdoctor::SessionLogSlice> bad = {sessions[0]};
  bad[0].bytes = "not a session log";
  error.clear();
  EXPECT_FALSE(hangdoctor::MuxSessionLogs(bad, {}, &stream, &error));
  EXPECT_FALSE(error.empty());

  // Trailing bytes after the v2 end marker: reconstruction could not be byte-identical.
  std::vector<hangdoctor::SessionLogSlice> trailing = {sessions[0]};
  trailing[0].bytes += '\0';
  error.clear();
  EXPECT_FALSE(hangdoctor::MuxSessionLogs(trailing, {}, &stream, &error));
  EXPECT_FALSE(error.empty());

  // Schedules that do not exhaust every session exactly.
  std::vector<size_t> counts = FrameCounts(sessions);
  std::vector<size_t> short_schedule(counts[0], 0);  // only session 0's frames
  error.clear();
  EXPECT_FALSE(hangdoctor::MuxSessionLogs(sessions, short_schedule, &stream, &error));
  EXPECT_FALSE(error.empty());
  std::vector<size_t> overdrawn =
      BuildSchedule(counts, [](const std::vector<size_t>& p) { return p[0]; });
  overdrawn.push_back(0);  // session 0 has no pending frame left
  error.clear();
  EXPECT_FALSE(hangdoctor::MuxSessionLogs(sessions, overdrawn, &stream, &error));
  EXPECT_FALSE(error.empty());
}

TEST(MuxLogTest, DemuxRejectsMalformedContainers) {
  std::vector<hangdoctor::SessionLogSlice> sessions = Corpus();
  std::string stream;
  std::string error;
  ASSERT_TRUE(hangdoctor::MuxSessionLogs(sessions, {}, &stream, &error)) << error;

  std::vector<hangdoctor::SessionLogSlice> back;
  EXPECT_FALSE(hangdoctor::DemuxSessionLog("", &back, &error));
  EXPECT_FALSE(hangdoctor::DemuxSessionLog("garbage", &back, &error));
  // A v2 log is not a v3 container.
  EXPECT_FALSE(hangdoctor::DemuxSessionLog(sessions[0].bytes, &back, &error));
  // Truncation: drop the final kEnd byte, and cut mid-frame.
  EXPECT_FALSE(
      hangdoctor::DemuxSessionLog(stream.substr(0, stream.size() - 1), &back, &error));
  EXPECT_FALSE(hangdoctor::DemuxSessionLog(stream.substr(0, stream.size() / 2), &back, &error));
  // Bytes after kEnd.
  EXPECT_FALSE(hangdoctor::DemuxSessionLog(stream + "x", &back, &error));
}

std::string FormatRecord(const hangdoctor::ExecutionRecord& record) {
  std::ostringstream out;
  out << record.execution_id << " uid=" << record.action_uid << " resp=" << record.response
      << " hang=" << record.hang << " s1=" << record.schecker_ran
      << " s2=" << record.diagnoser_ran << " traced=" << record.traced
      << " verdict=" << hangdoctor::VerdictName(record.verdict);
  if (record.diagnosis.valid) {
    out << " culprit=" << record.diagnosis.culprit.clazz << "."
        << record.diagnosis.culprit.function << ":" << record.diagnosis.culprit.line;
  }
  for (int64_t diff : record.schecker_diffs) {
    out << " " << diff;
  }
  return out.str();
}

// Replaying the multiplexed stream must equal replaying each member log alone — and the
// service results must be identical at every shard count.
TEST(MuxLogTest, MultiplexedReplayMatchesPerSessionReplayAtAnyShardCount) {
  std::vector<hangdoctor::SessionLogSlice> sessions = Corpus();
  std::string stream;
  std::string error;
  ASSERT_TRUE(hangdoctor::MuxSessionLogs(sessions, {}, &stream, &error)) << error;

  // Per-session oracle: ReplaySession over each demuxed log (written back to disk, since the
  // replay host reads files).
  std::vector<std::unique_ptr<hangdoctor::ReplaySession>> oracle(sessions.size());
  for (size_t i = 0; i < sessions.size(); ++i) {
    const std::string path = TempPath("oracle_" + std::to_string(i) + ".hdsl");
    std::ofstream out(path, std::ios::binary);
    out.write(sessions[i].bytes.data(),
              static_cast<std::streamsize>(sessions[i].bytes.size()));
    out.close();
    oracle[i] = hangdoctor::ReplaySessionLog(path, &error);
    ASSERT_NE(oracle[i], nullptr) << error;
  }

  for (int32_t shards : {1, 4, 7}) {
    std::vector<hangdoctor::SessionResult> results;
    ASSERT_TRUE(hangdoctor::ReplayMultiplexedLog(stream, {.shards = shards}, &results, &error))
        << "shards=" << shards << ": " << error;
    ASSERT_EQ(results.size(), sessions.size()) << "shards=" << shards;
    // Results come back in ascending-SessionId order.
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_LT(results[i - 1].id.value, results[i].id.value) << "shards=" << shards;
    }
    for (const hangdoctor::SessionResult& result : results) {
      // Find the matching input/oracle by id.
      size_t index = sessions.size();
      for (size_t i = 0; i < sessions.size(); ++i) {
        if (sessions[i].id == result.id) {
          index = i;
        }
      }
      ASSERT_LT(index, sessions.size()) << "unknown session id " << result.id.value;
      const hangdoctor::DetectorCore& core = oracle[index]->core();
      const std::string label =
          "shards=" + std::to_string(shards) + " id=" + std::to_string(result.id.value);
      EXPECT_EQ(result.app_package, oracle[index]->log().info.app_package) << label;
      EXPECT_EQ(result.report.Render(1), core.local_report().Render(1)) << label;
      EXPECT_EQ(result.overhead.cpu(), core.overhead().cpu()) << label;
      EXPECT_EQ(result.overhead.memory_bytes(), core.overhead().memory_bytes()) << label;
      EXPECT_EQ(result.stack_samples, core.stack_samples_taken()) << label;
      EXPECT_EQ(result.discovered, core.database().discovered()) << label;
      EXPECT_EQ(result.stream_ok, true) << label;
      ASSERT_EQ(result.log.size(), core.log().size()) << label;
      for (size_t i = 0; i < result.log.size(); ++i) {
        EXPECT_EQ(FormatRecord(result.log[i]), FormatRecord(core.log()[i]))
            << label << " record " << i;
      }
    }
  }
}

// Records one short live session for async study app `app_index`; the log carries HDSL v4
// AsyncPost/AsyncRun/AsyncWaitStart/AsyncWaitEnd records and thread-tagged samples.
std::string RecordAsyncSessionLog(size_t app_index, uint64_t seed) {
  const workload::Catalog& catalog = SharedCatalog();
  const droidsim::AppSpec* spec =
      catalog.async_apps()[app_index % catalog.async_apps().size()];
  const std::string path =
      TempPath("async_donor_" + std::to_string(app_index) + "_" + std::to_string(seed) +
               ".hdsl");
  workload::SingleAppHarness harness(droidsim::LgV10(), spec, seed);
  hangdoctor::SessionLogWriter writer(path, hangdoctor::HangDoctorConfig{});
  EXPECT_TRUE(writer.ok()) << path;
  {
    hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(),
                                  hangdoctor::HangDoctorConfig{}, /*database=*/nullptr,
                                  /*fleet_report=*/nullptr,
                                  /*device_id=*/static_cast<int32_t>(app_index), &writer);
    (void)doctor;
    harness.RunUserSession(simkit::Seconds(30));
  }
  workload::TraceUsage usage = harness.Usage();
  writer.WriteTraceUsage(usage.cpu, usage.bytes);
  writer.Finish();
  return FileBytes(path);
}

// HDSL v4 records are opaque payload to the v3 container: async sessions must mux/demux
// byte-identically under any interleaving, and the multiplexed replay must reproduce the
// per-session causal diagnoses at shard counts {1, 4, 7}.
TEST(MuxLogTest, AsyncSessionsMuxAndReplayAtAnyShardCount) {
  const workload::Catalog& catalog = SharedCatalog();
  std::vector<hangdoctor::SessionLogSlice> sessions;
  const uint64_t ids[] = {11, 2, 35};
  for (size_t i = 0; i < catalog.async_apps().size(); ++i) {
    sessions.push_back({telemetry::SessionId{ids[i % 3]}, RecordAsyncSessionLog(i, 9400 + i)});
  }

  // Byte-identical container round trips, round-robin and a seeded random interleaving.
  std::vector<size_t> counts = FrameCounts(sessions);
  RoundTrip(sessions, {}, "async_round_robin");
  std::mt19937 rng(17);
  RoundTrip(sessions,
            BuildSchedule(counts,
                          [&rng](const std::vector<size_t>& p) { return p[rng() % p.size()]; }),
            "async_random");

  // Per-session oracle replays; each must contain async records and a causal diagnosis.
  std::vector<std::unique_ptr<hangdoctor::ReplaySession>> oracle(sessions.size());
  std::string error;
  for (size_t i = 0; i < sessions.size(); ++i) {
    const std::string path = TempPath("async_oracle_" + std::to_string(i) + ".hdsl");
    std::ofstream out(path, std::ios::binary);
    out.write(sessions[i].bytes.data(),
              static_cast<std::streamsize>(sessions[i].bytes.size()));
    out.close();
    oracle[i] = hangdoctor::ReplaySessionLog(path, &error);
    ASSERT_NE(oracle[i], nullptr) << error;
    bool has_async = false;
    for (const hangdoctor::SessionRecord& record : oracle[i]->log().records) {
      if (record.tag == hangdoctor::SessionRecordTag::kAsyncPost) {
        has_async = true;
        break;
      }
    }
    EXPECT_TRUE(has_async) << "async session " << i << " recorded no AsyncPost";
  }

  std::string stream;
  ASSERT_TRUE(hangdoctor::MuxSessionLogs(sessions, {}, &stream, &error)) << error;
  for (int32_t shards : {1, 4, 7}) {
    std::vector<hangdoctor::SessionResult> results;
    ASSERT_TRUE(hangdoctor::ReplayMultiplexedLog(stream, {.shards = shards}, &results, &error))
        << "shards=" << shards << ": " << error;
    ASSERT_EQ(results.size(), sessions.size()) << "shards=" << shards;
    for (const hangdoctor::SessionResult& result : results) {
      size_t index = sessions.size();
      for (size_t i = 0; i < sessions.size(); ++i) {
        if (sessions[i].id == result.id) {
          index = i;
        }
      }
      ASSERT_LT(index, sessions.size()) << "unknown session id " << result.id.value;
      const hangdoctor::DetectorCore& core = oracle[index]->core();
      const std::string label =
          "async shards=" + std::to_string(shards) + " id=" + std::to_string(result.id.value);
      EXPECT_EQ(result.report.Render(1), core.local_report().Render(1)) << label;
      EXPECT_EQ(result.overhead.cpu(), core.overhead().cpu()) << label;
      EXPECT_EQ(result.overhead.memory_bytes(), core.overhead().memory_bytes()) << label;
      EXPECT_EQ(result.stack_samples, core.stack_samples_taken()) << label;
      EXPECT_EQ(result.stream_ok, true) << label;
      ASSERT_EQ(result.log.size(), core.log().size()) << label;
      for (size_t i = 0; i < result.log.size(); ++i) {
        EXPECT_EQ(FormatRecord(result.log[i]), FormatRecord(core.log()[i]))
            << label << " record " << i;
      }
    }
  }
}

}  // namespace
