// End-to-end wire determinism (DESIGN.md section 3.9): the 16-app study fleet is recorded
// once, replayed through a live hangdoctord NetServer by the loadgen over every
// {connections} x {workers} topology, and each session's harvested report must be
// bit-identical (Render string equality) to the RunFleet per-job oracle — the same contract
// service_test enforces in-process, extended across real sockets, framing, epoll workers,
// rings, and appliers. With chaos on, the plan-chosen disconnected connections abort their
// in-flight sessions while every session on a calm connection still matches the oracle
// exactly: a torn neighbor never perturbs anyone else's report.
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "src/hangdoctor/detector_service.h"
#include "src/netd/loadgen.h"
#include "src/netd/server.h"
#include "src/workload/catalog.h"
#include "src/workload/fleet.h"

namespace {

const workload::Catalog& SharedCatalog() {
  static const workload::Catalog* catalog = new workload::Catalog();
  return *catalog;
}

std::string TempDir() {
  // Per-process: ctest runs each case as its own process, in parallel — a shared directory
  // would race one case's record against another's read.
  std::filesystem::path dir = std::filesystem::temp_directory_path() /
                              ("hd_netd_determinism_" + std::to_string(getpid()));
  std::filesystem::create_directories(dir);
  return dir.string();
}

struct RecordedFleet {
  workload::FleetSummary oracle;                       // per-job (service = false) results
  std::vector<std::string> logs;                       // recorded HDSL bytes, job order
  std::vector<hangdoctor::SessionLogSlice> sessions;   // id = job index + 1, views into logs
};

// Records the study fleet once; every topology below replays the same bytes.
const RecordedFleet& Fleet() {
  static const RecordedFleet* fleet = [] {
    auto* f = new RecordedFleet();
    const workload::Catalog& catalog = SharedCatalog();
    std::string dir = TempDir();
    std::vector<workload::FleetJob> jobs;
    for (const droidsim::AppSpec* spec : catalog.study_apps()) {
      workload::FleetJob job;
      job.spec = spec;
      job.profile = droidsim::LgV10();
      job.seed = workload::FleetSeed(4242, jobs.size());
      job.session = simkit::Seconds(30);
      job.device_id = static_cast<int32_t>(jobs.size() % 4);
      job.record_path = dir + "/job_" + std::to_string(jobs.size()) + ".hdsl";
      jobs.push_back(job);
    }
    f->oracle = workload::RunFleet(jobs, {.jobs = 2, .service = false});
    EXPECT_EQ(f->oracle.failed, 0u);
    for (const auto& job : jobs) {
      std::ifstream in(job.record_path, std::ios::binary);
      f->logs.emplace_back(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
      EXPECT_FALSE(f->logs.back().empty()) << job.record_path;
    }
    for (size_t i = 0; i < f->logs.size(); ++i) {
      f->sessions.push_back({telemetry::SessionId{i + 1}, f->logs[i]});
    }
    return f;
  }();
  return *fleet;
}

netd::ServerOptions Topology(int32_t workers) {
  netd::ServerOptions options;
  options.workers = workers;
  options.rings = workers;
  options.service.shards = 4;
  return options;
}

// A harvested session must equal its oracle job bit for bit. Render(4) covers entry order,
// counts, scores, and culprit frames; stream health must be clean too.
void ExpectMatchesOracle(const netd::NetSessionOutcome& outcome, const std::string& label) {
  const RecordedFleet& fleet = Fleet();
  ASSERT_GE(outcome.id.value, 1u) << label;
  ASSERT_LE(outcome.id.value, fleet.oracle.jobs.size()) << label;
  const workload::FleetJobResult& oracle = fleet.oracle.jobs[outcome.id.value - 1];
  EXPECT_TRUE(outcome.result.stream_ok) << label << ": " << outcome.result.stream_error;
  EXPECT_EQ(outcome.result.report.Render(4), oracle.report.Render(4))
      << label << " session " << outcome.id.value << " (" << oracle.app_package << ")";
}

TEST(NetdDeterminismTest, WireIngestMatchesOracleAtEveryTopology) {
  const RecordedFleet& fleet = Fleet();
  std::string oracle_merged = fleet.oracle.merged_report.Render(4);
  for (int32_t connections : {1, 8, 64}) {
    for (int32_t workers : {1, 4}) {
      std::string label = "connections=" + std::to_string(connections) +
                          " workers=" + std::to_string(workers);
      netd::NetServer server(Topology(workers));
      netd::LoadGenOptions options;
      options.connections = connections;
      netd::LoadGenResult result = netd::RunLoadGen(server.port(), fleet.sessions, options);
      for (const auto& conn : result.connections) {
        EXPECT_TRUE(conn.completed) << label << ": " << conn.error;
      }
      EXPECT_EQ(result.busy, 0) << label;
      EXPECT_EQ(result.errors, 0) << label;
      server.Stop();

      std::vector<netd::NetSessionOutcome> outcomes = server.TakeResults();
      ASSERT_EQ(outcomes.size(), fleet.sessions.size()) << label;
      std::vector<hangdoctor::SessionResult> closed;
      for (auto& outcome : outcomes) {
        ASSERT_FALSE(outcome.aborted) << label << ": " << outcome.stream_error;
        ExpectMatchesOracle(outcome, label);
        closed.push_back(std::move(outcome.result));
      }
      std::sort(closed.begin(), closed.end(),
                [](const auto& a, const auto& b) { return a.id.value < b.id.value; });
      EXPECT_EQ(hangdoctor::MergeSessionReports(closed).Render(4), oracle_merged) << label;
      EXPECT_EQ(server.live_sessions(), 0u) << label;
      EXPECT_EQ(server.live_session_bytes(), 0) << label;
    }
  }
}

TEST(NetdDeterminismTest, ChaosDisconnectsAbortWithoutPerturbingNeighbors) {
  const RecordedFleet& fleet = Fleet();
  for (uint64_t seed : {7u, 19u}) {
    std::string label = "chaos seed=" + std::to_string(seed);
    netd::NetServer server(Topology(4));
    netd::LoadGenOptions options;
    options.connections = 8;
    options.chaos = true;
    options.seed = seed;
    netd::LoadGenResult result = netd::RunLoadGen(server.port(), fleet.sessions, options);
    server.Stop();

    // Which sessions rode a chaos-dropped connection? Only those may abort.
    std::unordered_set<uint64_t> on_chaos;
    size_t chaos_connections = 0;
    for (const auto& conn : result.connections) {
      if (conn.chaos_disconnect) {
        ++chaos_connections;
        on_chaos.insert(conn.sessions.begin(), conn.sessions.end());
      } else {
        EXPECT_TRUE(conn.completed) << label << ": " << conn.error;
      }
    }

    std::vector<netd::NetSessionOutcome> outcomes = server.TakeResults();
    ASSERT_EQ(outcomes.size(), fleet.sessions.size()) << label;
    size_t aborted = 0;
    for (const auto& outcome : outcomes) {
      if (outcome.aborted) {
        ++aborted;
        EXPECT_TRUE(on_chaos.count(outcome.id.value))
            << label << ": calm session " << outcome.id.value << " aborted: "
            << outcome.stream_error;
        EXPECT_FALSE(outcome.stream_error.empty()) << label;
      } else {
        // Closed cleanly — whether on a calm connection or before its chaos cut — so it
        // must still match the oracle bit for bit.
        ExpectMatchesOracle(outcome, label);
      }
    }
    // The seeds are chosen so both populations exist; if a regression made chaos a no-op
    // (or drop everything), this notices.
    EXPECT_GT(chaos_connections, 0u) << label;
    EXPECT_LT(chaos_connections, result.connections.size()) << label;
    EXPECT_GT(aborted, 0u) << label;
    EXPECT_LT(aborted, outcomes.size()) << label;
    // Nothing leaks: every aborted session was discarded, every budget byte released.
    EXPECT_EQ(server.live_sessions(), 0u) << label;
    EXPECT_EQ(server.live_session_bytes(), 0) << label;
    EXPECT_EQ(server.stats().sessions_aborted.load(), static_cast<int64_t>(aborted)) << label;
  }
}

}  // namespace
