// KnowledgeBase concurrency: snapshot churn under TSan (writers absorbing + publishing while
// readers acquire and query — the RCU-style publication protocol must be race-free), and the
// pipelined-fleet bit-identity matrix over {threads} x {shards} x {epoch length}.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/hangdoctor/blocking_api_db.h"
#include "src/hangdoctor/knowledge_base.h"
#include "src/workload/catalog.h"
#include "src/workload/experiment.h"
#include "src/workload/fleet.h"

namespace {

const workload::Catalog& SharedCatalog() {
  static const workload::Catalog* catalog = new workload::Catalog();
  return *catalog;
}

// A smaller fleet than the integration suite's — the matrix below multiplies it by 11 and
// TSan by ~10x again — but still covering half the study apps on four devices.
std::vector<workload::FleetJob> SmallFleet(const hangdoctor::BlockingApiDatabase* known_db) {
  const workload::Catalog& catalog = SharedCatalog();
  std::vector<workload::FleetJob> jobs;
  for (size_t i = 0; i < 8; ++i) {
    workload::FleetJob job;
    job.spec = catalog.study_apps()[i];
    job.profile = droidsim::LgV10();
    job.seed = workload::FleetSeed(99, i);
    job.session = simkit::Seconds(20);
    job.device_id = static_cast<int32_t>(i % 4);
    job.known_db = known_db;
    jobs.push_back(job);
  }
  return jobs;
}

void ExpectFleetEqual(const workload::FleetSummary& a, const workload::FleetSummary& b,
                      const std::string& label) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size()) << label;
  EXPECT_EQ(a.failed, b.failed) << label;
  EXPECT_EQ(a.merged_report.Render(4), b.merged_report.Render(4)) << label;
  EXPECT_EQ(a.discovered, b.discovered) << label;
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    const std::string job_label = label + " job " + std::to_string(i);
    EXPECT_EQ(a.jobs[i].report.Render(4), b.jobs[i].report.Render(4)) << job_label;
    EXPECT_EQ(a.jobs[i].discovered, b.jobs[i].discovered) << job_label;
    EXPECT_EQ(a.jobs[i].Describe(), b.jobs[i].Describe()) << job_label;
  }
}

TEST(KbConcurrencyTest, SnapshotChurnStress) {
  hangdoctor::BlockingApiDatabase seed;
  seed.SeedKnown("android.hardware.Camera.open");
  hangdoctor::KnowledgeBase kb(seed);

  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kSessionsPerWriter = 200;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&kb, w] {
      for (int s = 0; s < kSessionsPerWriter; ++s) {
        uint64_t session = static_cast<uint64_t>(w) * kSessionsPerWriter + s;
        hangdoctor::DiagnosisMemoEntry memo;
        memo.key.app_package = "com.example.app" + std::to_string(session % 7);
        memo.key.symbols_fingerprint = session % 13;
        memo.key.shape = {1, static_cast<uint32_t>(session % 5)};
        memo.diagnosis.valid = true;
        memo.diagnosis.culprit.function = "api" + std::to_string(session % 11);
        kb.AbsorbSession(telemetry::SessionId{session},
                         {"com.example.Api" + std::to_string(session % 11) + ".block"},
                         {memo}, {});
        if (s % 10 == 9) {
          kb.Publish();
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&kb, &done] {
      hangdoctor::DiagnosisMemoKey probe;
      probe.app_package = "com.example.app3";
      probe.symbols_fingerprint = 3;
      probe.shape = {1, 3};
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        hangdoctor::KnowledgeBase::Snapshot snap = kb.Acquire();
        ASSERT_TRUE(snap.valid());
        // Epochs only move forward for a reader re-acquiring.
        ASSERT_GE(snap.epoch(), last_epoch);
        last_epoch = snap.epoch();
        ASSERT_TRUE(snap.IsKnown("android.hardware.Camera.open"));  // seed never vanishes
        const hangdoctor::Diagnosis* memo = snap.FindMemo(probe);
        if (memo != nullptr) {
          ASSERT_TRUE(memo->valid);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads[static_cast<size_t>(w)].join();
  }
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) {
    threads[t].join();
  }

  kb.Publish();
  hangdoctor::KnowledgeBase::Stats stats = kb.TotalStats();
  EXPECT_EQ(stats.sessions_absorbed, kWriters * kSessionsPerWriter);
  EXPECT_EQ(stats.discovered, 11u);  // session % 11 distinct APIs, deduplicated on merge
}

TEST(KbConcurrencyTest, PipelinedFleetBitIdenticalAcrossThreadsShardsAndEpochs) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  std::vector<workload::FleetJob> jobs = SmallFleet(&known_db);

  workload::FleetOptions oracle_options;
  oracle_options.jobs = 2;
  oracle_options.service = false;
  workload::FleetSummary oracle = workload::RunFleet(jobs, oracle_options);
  ASSERT_EQ(oracle.failed, 0u);

  for (int32_t threads : {1, 4, 8}) {
    for (int32_t shards : {1, 4, 7}) {
      workload::FleetOptions options;
      options.jobs = 2;
      options.threads = threads;
      options.shards = shards;
      options.shared_kb = true;
      options.kb_epoch_sessions = 16;
      workload::FleetSummary kb_on = workload::RunFleet(jobs, options);
      ExpectFleetEqual(oracle, kb_on,
                       "threads=" + std::to_string(threads) +
                           " shards=" + std::to_string(shards));
    }
  }
  // Epoch-length axis at one {threads, shards} point: every-session publish and
  // barriers-only publish both stay on the oracle's bits.
  for (int64_t epoch : {int64_t{1}, int64_t{0}}) {
    workload::FleetOptions options;
    options.jobs = 2;
    options.threads = 4;
    options.shards = 4;
    options.shared_kb = true;
    options.kb_epoch_sessions = epoch;
    workload::FleetSummary kb_on = workload::RunFleet(jobs, options);
    ExpectFleetEqual(oracle, kb_on, "epoch=" + std::to_string(epoch));
    EXPECT_EQ(kb_on.kb.sessions_absorbed, 8) << epoch;
  }
}

}  // namespace
