// The lock-free ingest pipeline, attacked from below and from above. From below: the simkit
// concurrency primitives (MPMC ring, batch router, open-addressed map, affinity) against
// reference models and multi-threaded stress — these run on the TSan CI leg, so every
// atomic's ordering is machine-checked, not argued. From above: the DetectorService
// determinism contract — pipelined ingest at any {threads, shards} produces results
// bit-identical to the synchronous path and to the per-job fleet oracle, fault-injected
// sessions included.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/faultsim/fault_plan.h"
#include "src/hangdoctor/detector_service.h"
#include "src/hangdoctor/session_stream.h"
#include "src/hosts/hang_doctor.h"
#include "src/simkit/affinity.h"
#include "src/simkit/batch_router.h"
#include "src/simkit/mpmc_ring.h"
#include "src/simkit/shard_map.h"
#include "src/workload/catalog.h"
#include "src/workload/experiment.h"
#include "src/workload/fleet.h"

namespace {

// ---------------------------------------------------------------------------
// MpmcRing: single-threaded semantics against a deque model.

TEST(MpmcRingTest, SingleThreadMatchesDequeModel) {
  simkit::MpmcRing<int> ring(8);
  std::deque<int> model;
  // Deterministic push/pop pattern exercising wraparound several times over.
  uint64_t state = 0x9E3779B97F4A7C15ULL;
  for (int step = 0; step < 10000; ++step) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    if ((state >> 33) % 3 != 0) {  // push-biased so the ring fills and wraps
      int value = step;
      if (ring.TryPush(value)) {
        model.push_back(step);
      } else {
        EXPECT_EQ(model.size(), ring.capacity());  // rejects exactly when full
      }
    } else {
      int out = -1;
      if (ring.TryPop(out)) {
        ASSERT_FALSE(model.empty());
        EXPECT_EQ(out, model.front());
        model.pop_front();
      } else {
        EXPECT_TRUE(model.empty());  // rejects exactly when empty
      }
    }
  }
  int out = -1;
  while (ring.TryPop(out)) {
    ASSERT_FALSE(model.empty());
    EXPECT_EQ(out, model.front());
    model.pop_front();
  }
  EXPECT_TRUE(model.empty());
}

TEST(MpmcRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(simkit::MpmcRing<int>(1).capacity(), 2u);
  EXPECT_EQ(simkit::MpmcRing<int>(2).capacity(), 2u);
  EXPECT_EQ(simkit::MpmcRing<int>(3).capacity(), 4u);
  EXPECT_EQ(simkit::MpmcRing<int>(100).capacity(), 128u);
  EXPECT_EQ(simkit::MpmcRing<int>(1024).capacity(), 1024u);
}

// MPMC stress: 4 producers push tagged items, 2 consumers drain. Every item arrives exactly
// once, and within each consumer's observed stream, any one producer's items appear in
// push order (the per-producer FIFO guarantee the service's determinism contract rests on).
TEST(MpmcRingTest, ConcurrentProducersAndConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 2;
  constexpr uint64_t kPerProducer = 5000;
  simkit::MpmcRing<uint64_t> ring(64);
  std::atomic<int> producers_left{kProducers};
  std::vector<std::vector<uint64_t>> consumed(kConsumers);

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([p, &ring]() {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        ring.Push((static_cast<uint64_t>(p) << 32) | i);  // tag: producer in the high half
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([c, &ring, &producers_left, &consumed]() {
      uint64_t value = 0;
      for (;;) {
        if (ring.TryPop(value)) {
          consumed[c].push_back(value);
        } else if (producers_left.load(std::memory_order_acquire) == 0) {
          if (!ring.TryPop(value)) {
            return;  // producers done and the ring drained twice: nothing left
          }
          consumed[c].push_back(value);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[static_cast<size_t>(p)].join();
    producers_left.fetch_sub(1, std::memory_order_release);
  }
  for (size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }

  // Exactly-once delivery: the union of both consumers is every tagged item, no dups.
  std::map<uint64_t, int> seen;
  for (const std::vector<uint64_t>& stream : consumed) {
    for (uint64_t value : stream) {
      ++seen[value];
    }
  }
  ASSERT_EQ(seen.size(), kProducers * kPerProducer);
  for (const auto& [value, count] : seen) {
    ASSERT_EQ(count, 1) << "item " << value << " delivered " << count << " times";
  }
  // Per-producer FIFO within each consumer's stream.
  for (int c = 0; c < kConsumers; ++c) {
    std::vector<uint64_t> last(kProducers, 0);
    std::vector<bool> any(kProducers, false);
    for (uint64_t value : consumed[c]) {
      int p = static_cast<int>(value >> 32);
      uint64_t i = value & 0xFFFFFFFFULL;
      if (any[p]) {
        ASSERT_GT(i, last[p]) << "producer " << p << " reordered at consumer " << c;
      }
      last[p] = i;
      any[p] = true;
    }
  }
}

// Blocking Push provides backpressure, not loss: a tiny ring forces the producer to wait for
// the consumer, and everything still arrives in order (SPSC => total order).
TEST(MpmcRingTest, BlockingPushBackpressuresOnTinyRing) {
  simkit::MpmcRing<int> ring(4);
  constexpr int kItems = 20000;
  std::thread producer([&ring]() {
    for (int i = 0; i < kItems; ++i) {
      ring.Push(i);
    }
  });
  std::vector<int> received;
  received.reserve(kItems);
  while (received.size() < kItems) {
    int value = -1;
    if (ring.TryPop(value)) {
      received.push_back(value);
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(received[static_cast<size_t>(i)], i);
  }
}

// ---------------------------------------------------------------------------
// BatchRouter: batching amortization without reordering.

TEST(BatchRouterTest, RoutesInOrderAndDispatchesFullBatches) {
  std::vector<std::vector<std::vector<int>>> sunk(3);  // [shard][batch][item]
  simkit::BatchRouter<int> router(
      3, 4, [](const int& item) { return static_cast<size_t>(item % 3); },
      [&sunk](size_t shard, std::vector<int>&& batch) {
        EXPECT_LE(batch.size(), 4u);
        sunk[shard].push_back(std::move(batch));
      });
  for (int i = 0; i < 50; ++i) {
    router.Push(i);
  }
  // 17 items hit shards 0 and 1 (4 full batches dispatched, 1 item pending each); shard 2
  // has 16 (all dispatched, nothing pending).
  EXPECT_EQ(sunk[0].size(), 4u);
  EXPECT_EQ(sunk[1].size(), 4u);
  EXPECT_EQ(sunk[2].size(), 4u);
  router.Flush();
  EXPECT_EQ(sunk[0].size(), 5u);
  EXPECT_EQ(sunk[1].size(), 5u);
  EXPECT_EQ(sunk[2].size(), 4u);
  // Per-shard order: concatenated batches replay the push order of that shard's items.
  for (int shard = 0; shard < 3; ++shard) {
    std::vector<int> flat;
    for (const std::vector<int>& batch : sunk[static_cast<size_t>(shard)]) {
      flat.insert(flat.end(), batch.begin(), batch.end());
    }
    int expected = shard;
    for (int item : flat) {
      EXPECT_EQ(item, expected);
      expected += 3;
    }
  }
  router.Flush();  // nothing pending: no empty batches are sunk
  EXPECT_EQ(sunk[0].size(), 5u);
}

// ---------------------------------------------------------------------------
// OpenHashMap: insert/find/erase churn against the standard map.

TEST(OpenHashMapTest, ChurnMatchesUnorderedMapModel) {
  struct Hasher {
    size_t operator()(uint64_t key) const { return static_cast<size_t>(key * 0x9E3779B9ULL); }
  };
  simkit::OpenHashMap<uint64_t, int, Hasher> map;
  std::unordered_map<uint64_t, int> model;
  uint64_t state = 12345;
  for (int step = 0; step < 20000; ++step) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    uint64_t key = (state >> 40) % 512;  // small key space => heavy churn + tombstone reuse
    switch ((state >> 20) % 3) {
      case 0: {  // insert
        auto [slot, inserted] = map.Insert(key, static_cast<int>(step));
        auto [it, model_inserted] = model.try_emplace(key, static_cast<int>(step));
        ASSERT_EQ(inserted, model_inserted);
        ASSERT_EQ(*slot, it->second);
        break;
      }
      case 1: {  // find
        int* found = map.Find(key);
        auto it = model.find(key);
        ASSERT_EQ(found != nullptr, it != model.end());
        if (found != nullptr) {
          ASSERT_EQ(*found, it->second);
        }
        break;
      }
      case 2: {  // erase
        int out = -1;
        bool erased = map.Erase(key, &out);
        auto it = model.find(key);
        ASSERT_EQ(erased, it != model.end());
        if (erased) {
          ASSERT_EQ(out, it->second);
          model.erase(it);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), model.size());
  }
  // Full-content check via ForEach.
  size_t visited = 0;
  map.ForEach([&model, &visited](const uint64_t& key, int& value) {
    ++visited;
    auto it = model.find(key);
    ASSERT_NE(it, model.end());
    ASSERT_EQ(value, it->second);
  });
  EXPECT_EQ(visited, model.size());
}

// ---------------------------------------------------------------------------
// Affinity: best-effort pinning never fails hard.

TEST(AffinityTest, PinCurrentThreadSmoke) {
  EXPECT_GE(simkit::OnlineCoreCount(), 1);
#if defined(__linux__)
  EXPECT_TRUE(simkit::PinCurrentThreadToCore(0));
  EXPECT_TRUE(simkit::PinCurrentThreadToCore(simkit::OnlineCoreCount() + 3));  // wraps
  EXPECT_FALSE(simkit::PinCurrentThreadToCore(-1));
#endif
}

// ---------------------------------------------------------------------------
// DetectorService pipeline: options validation, error surfacing, graceful drain.

TEST(IngestPipelineTest, OptionValidationThrows) {
  EXPECT_THROW(hangdoctor::DetectorService(hangdoctor::ServiceOptions{0}),
               std::invalid_argument);
  EXPECT_THROW(hangdoctor::DetectorService(hangdoctor::ServiceOptions{-3}),
               std::invalid_argument);
  EXPECT_THROW(hangdoctor::DetectorService(hangdoctor::ServiceOptions{1, -1}),
               std::invalid_argument);
  EXPECT_THROW(hangdoctor::DetectorService(
                   hangdoctor::ServiceOptions{.shards = 1, .ring_capacity = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      hangdoctor::DetectorService(hangdoctor::ServiceOptions{.shards = 1, .batch_size = 0}),
      std::invalid_argument);

  workload::FleetOptions bad_fleet;
  bad_fleet.threads = -1;
  EXPECT_THROW(workload::RunFleet({}, bad_fleet), std::invalid_argument);

  // An Ingestor needs a pipeline to feed.
  hangdoctor::DetectorService sync_only(hangdoctor::ServiceOptions{2});
  EXPECT_EQ(sync_only.ingest_threads(), 0);
  EXPECT_THROW(hangdoctor::DetectorService::Ingestor{&sync_only}, std::logic_error);
}

TEST(IngestPipelineTest, UnroutableRecordSurfacesAsIngestError) {
  hangdoctor::ServiceOptions options;
  options.shards = 3;
  options.threads = 2;
  hangdoctor::DetectorService service(options);
  EXPECT_EQ(service.ingest_threads(), 2);

  hangdoctor::SpiPayload orphan;
  orphan.kind = hangdoctor::SpiPayload::Kind::kDispatchStart;
  orphan.start.execution_id = 1;
  {
    hangdoctor::DetectorService::Ingestor ingestor(&service);
    ingestor.Push({telemetry::SessionId{77}, &orphan});
  }
  std::vector<hangdoctor::IngestError> errors = service.TakeIngestErrors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].session.value, 77u);
  EXPECT_NE(errors[0].message.find("not open"), std::string::npos) << errors[0].message;
  // The error was consumed; the pipeline is clean again.
  EXPECT_TRUE(service.TakeIngestErrors().empty());
  EXPECT_EQ(service.live_sessions(), 0u);
}

TEST(IngestPipelineTest, DestructionDrainsInFlightBatches) {
  telemetry::SymbolTable symbols;
  hangdoctor::SessionInfo info;
  info.app_package = "com.example.drain";
  info.num_actions = 2;
  info.symbols = &symbols;
  hangdoctor::SpiPayload open_payload;
  open_payload.kind = hangdoctor::SpiPayload::Kind::kSessionOpen;
  open_payload.info = info;

  hangdoctor::ServiceOptions options;
  options.shards = 5;
  options.threads = 2;
  options.batch_size = 8;
  hangdoctor::DetectorService service(options);
  {
    hangdoctor::DetectorService::Ingestor ingestor(&service);
    for (uint64_t s = 0; s < 200; ++s) {
      ingestor.Push({telemetry::SessionId{s}, &open_payload});
    }
  }
  // No barrier: the service is destroyed with batches potentially still in its rings. The
  // destructor's drain must apply them all before the workers join (sanitizer-checked), and
  // since every record is an open, a full drain is observable right before destruction.
  service.WaitIngestIdle();
  EXPECT_EQ(service.sessions_opened(), 200);
  EXPECT_EQ(service.live_sessions(), 200u);
}

// ---------------------------------------------------------------------------
// Determinism from above: pipelined ingest ≡ synchronous ingest ≡ per-job oracle.

const workload::Catalog& SharedCatalog() {
  static const workload::Catalog* catalog = new workload::Catalog();
  return *catalog;
}

// A donor SPI stream from one recorded droidsim session.
struct DonorStream {
  // The harness owns the symbol table the captured stream references, so it must live as
  // long as the donor payloads. The DonorStream itself is immortal (function-local static
  // pointer in Donor()), which also keeps this reachable for LeakSanitizer.
  workload::SingleAppHarness* harness;
  hangdoctor::SessionInfo info;
  hangdoctor::HangDoctorConfig config;
  std::vector<hangdoctor::SpiPayload> records;
};

const DonorStream& Donor() {
  static const DonorStream* donor = []() {
    auto* made = new DonorStream();
    hangdoctor::SpiStreamRecorder recorder;
    auto* harness = new workload::SingleAppHarness(
        droidsim::LgV10(), SharedCatalog().FindApp("K9-Mail"), /*seed=*/0x5E55);
    made->harness = harness;
    {
      hangdoctor::HangDoctor doctor(&harness->phone(), &harness->app(), made->config,
                                    /*database=*/nullptr, /*fleet_report=*/nullptr,
                                    /*device_id=*/0, &recorder);
      harness->RunUserSession(simkit::Seconds(20), {});
    }
    made->info = recorder.info();
    made->records = recorder.records();
    return made;
  }();
  return *donor;
}

// Builds an interleaved multi-session stream: `sessions` copies of the donor session with
// records round-robined (record r of every session lands before record r+1 of any).
std::vector<hangdoctor::ServiceRecord> InterleavedStream(size_t sessions) {
  const DonorStream& donor = Donor();
  std::vector<hangdoctor::ServiceRecord> stream;
  stream.reserve(sessions * (donor.records.size() + 2));
  for (uint64_t s = 0; s < sessions; ++s) {
    hangdoctor::SpiPayload open_payload;
    open_payload.kind = hangdoctor::SpiPayload::Kind::kSessionOpen;
    open_payload.info = donor.info;
    open_payload.config = donor.config;
    stream.push_back({telemetry::SessionId{s}, std::move(open_payload)});
  }
  for (const hangdoctor::SpiPayload& payload : donor.records) {
    for (uint64_t s = 0; s < sessions; ++s) {
      stream.push_back({telemetry::SessionId{s}, payload});
    }
  }
  for (uint64_t s = 0; s < sessions; ++s) {
    hangdoctor::SpiPayload close_payload;
    close_payload.kind = hangdoctor::SpiPayload::Kind::kSessionClose;
    stream.push_back({telemetry::SessionId{s}, std::move(close_payload)});
  }
  return stream;
}

void ExpectSessionResultsEqual(const std::vector<hangdoctor::SessionResult>& a,
                               const std::vector<hangdoctor::SessionResult>& b,
                               const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    const std::string session_label = label + " session " + std::to_string(i);
    EXPECT_EQ(a[i].id.value, b[i].id.value) << session_label;
    EXPECT_EQ(a[i].app_package, b[i].app_package) << session_label;
    EXPECT_EQ(a[i].log.size(), b[i].log.size()) << session_label;
    EXPECT_EQ(a[i].report.Render(1), b[i].report.Render(1)) << session_label;
    EXPECT_EQ(a[i].stack_samples, b[i].stack_samples) << session_label;
    EXPECT_EQ(a[i].stream_ok, b[i].stream_ok) << session_label;
    EXPECT_EQ(a[i].discovered, b[i].discovered) << session_label;
    EXPECT_DOUBLE_EQ(a[i].overhead.OverheadPercent(1e9, 1e9),
                     b[i].overhead.OverheadPercent(1e9, 1e9))
        << session_label;
  }
}

TEST(IngestPipelineTest, PipelinedConsumeMatchesSynchronousAtEveryTopology) {
  constexpr size_t kSessions = 12;
  std::vector<hangdoctor::ServiceRecord> stream = InterleavedStream(kSessions);

  hangdoctor::DetectorService reference(hangdoctor::ServiceOptions{3});
  std::vector<hangdoctor::SessionResult> expected = reference.Consume(stream);
  ASSERT_EQ(expected.size(), kSessions);

  for (int32_t threads : {1, 4, 8}) {
    for (int32_t shards : {1, 4, 7}) {
      hangdoctor::ServiceOptions options;
      options.shards = shards;
      options.threads = threads;
      options.ring_capacity = 4;  // tiny rings so backpressure is exercised, not just possible
      options.batch_size = 16;
      hangdoctor::DetectorService service(options);
      std::vector<hangdoctor::SessionResult> got = service.Consume(stream);
      ExpectSessionResultsEqual(
          expected, got,
          "threads=" + std::to_string(threads) + " shards=" + std::to_string(shards));
      hangdoctor::HangBugReport merged = hangdoctor::MergeSessionReports(got);
      EXPECT_EQ(merged.Render(1), hangdoctor::MergeSessionReports(expected).Render(1));
    }
  }
}

// The fleet-level contract, ISSUE acceptance shape: two-phase pipelined fleets are
// bit-identical to the per-job oracle at every {threads, shards} pair.
std::vector<workload::FleetJob> SmallStudyFleet(
    const hangdoctor::BlockingApiDatabase* known_db, const faultsim::FaultProfile& faults) {
  const workload::Catalog& catalog = SharedCatalog();
  std::vector<workload::FleetJob> jobs;
  for (const droidsim::AppSpec* spec : catalog.study_apps()) {
    if (jobs.size() == 8) {
      break;
    }
    workload::FleetJob job;
    job.spec = spec;
    job.profile = droidsim::LgV10();
    job.seed = workload::FleetSeed(777, jobs.size());
    job.session = simkit::Seconds(20);
    job.device_id = static_cast<int32_t>(jobs.size() % 4);
    job.known_db = known_db;
    job.faults = faults;
    jobs.push_back(job);
  }
  return jobs;
}

void ExpectFleetsEqual(const workload::FleetSummary& oracle,
                       const workload::FleetSummary& pipelined, const std::string& label) {
  ASSERT_EQ(oracle.jobs.size(), pipelined.jobs.size()) << label;
  EXPECT_EQ(oracle.failed, pipelined.failed) << label;
  EXPECT_EQ(oracle.merged_report.Render(4), pipelined.merged_report.Render(4)) << label;
  EXPECT_EQ(oracle.discovered, pipelined.discovered) << label;
  EXPECT_EQ(oracle.merged_stats.true_positives, pipelined.merged_stats.true_positives)
      << label;
  EXPECT_EQ(oracle.merged_stats.false_positives, pipelined.merged_stats.false_positives)
      << label;
  EXPECT_EQ(oracle.merged_stats.false_negatives, pipelined.merged_stats.false_negatives)
      << label;
  for (size_t i = 0; i < oracle.jobs.size(); ++i) {
    const std::string job_label = label + " job " + std::to_string(i);
    EXPECT_EQ(oracle.jobs[i].Describe(), pipelined.jobs[i].Describe()) << job_label;
    EXPECT_EQ(oracle.jobs[i].report.Render(4), pipelined.jobs[i].report.Render(4))
        << job_label;
    EXPECT_EQ(oracle.jobs[i].stack_samples, pipelined.jobs[i].stack_samples) << job_label;
    EXPECT_DOUBLE_EQ(oracle.jobs[i].overhead_pct, pipelined.jobs[i].overhead_pct)
        << job_label;
  }
}

TEST(IngestPipelineTest, PipelinedFleetMatchesOracleAcrossTopologies) {
  hangdoctor::BlockingApiDatabase known_db = SharedCatalog().MakeKnownDatabase();
  std::vector<workload::FleetJob> jobs = SmallStudyFleet(&known_db, {});

  workload::FleetOptions oracle_options;
  oracle_options.jobs = 2;
  oracle_options.service = false;
  workload::FleetSummary oracle = workload::RunFleet(jobs, oracle_options);
  ASSERT_EQ(oracle.failed, 0u);

  for (int32_t threads : {1, 4, 8}) {
    for (int32_t shards : {1, 4, 7}) {
      workload::FleetOptions options;
      options.jobs = 2;
      options.shards = shards;
      options.threads = threads;
      workload::FleetSummary pipelined = workload::RunFleet(jobs, options);
      ExpectFleetsEqual(oracle, pipelined,
                        "threads=" + std::to_string(threads) +
                            " shards=" + std::to_string(shards));
    }
  }
}

TEST(IngestPipelineTest, PipelinedFleetMatchesOracleUnderFaultInjection) {
  hangdoctor::BlockingApiDatabase known_db = SharedCatalog().MakeKnownDatabase();
  std::vector<workload::FleetJob> jobs =
      SmallStudyFleet(&known_db, faultsim::FaultProfile::Named("chaos"));

  workload::FleetOptions oracle_options;
  oracle_options.jobs = 2;
  oracle_options.service = false;
  workload::FleetSummary oracle = workload::RunFleet(jobs, oracle_options);

  // The capture tap sits downstream of the fault injector, so the pipeline must reproduce
  // the *faulty* sessions bit-identically — degradation counters and all.
  for (int32_t threads : {1, 4}) {
    workload::FleetOptions options;
    options.jobs = 2;
    options.shards = 7;
    options.threads = threads;
    workload::FleetSummary pipelined = workload::RunFleet(jobs, options);
    ExpectFleetsEqual(oracle, pipelined, "chaos threads=" + std::to_string(threads));
  }
}

}  // namespace
