// hangdoctord wire-protocol conformance battery (DESIGN.md section 3.9), over in-process
// socketpairs so the whole stack — FrameSplitter, HELLO negotiation, MuxStreamDecoder,
// admission control, backpressure, drain — runs under the sanitizer legs with no real
// network. Each case is a protocol clause: version negotiation (v3 + v4 accepted, others
// rejected), frame round-trip byte-identity, 1-byte drip and fully-coalesced reads,
// oversized-length and truncated-frame rejection with a sticky per-connection error,
// structured BUSY admission replies, and graceful-drain report flush.
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/hosts/mux_log.h"
#include "src/netd/client.h"
#include "src/netd/loadgen.h"
#include "src/netd/record_codec.h"
#include "src/netd/server.h"
#include "src/netd/wire.h"
#include "src/workload/catalog.h"
#include "src/workload/fleet.h"

namespace {

using netd::Reply;
using netd::ReplyTag;

std::string TempPath(const std::string& leaf) {
  // Per-process: ctest runs each case as its own process, in parallel — a shared directory
  // would race one case's record against another's read.
  std::filesystem::path dir = std::filesystem::temp_directory_path() /
                              ("hd_netd_protocol_" + std::to_string(getpid()));
  std::filesystem::create_directories(dir);
  return (dir / leaf).string();
}

// One small recorded study-app session, shared by every case: realistic header (full symbol
// table), realistic record stream, and a report the oracle path can reproduce.
const std::string& DonorLogBytes() {
  static const std::string* bytes = [] {
    static const workload::Catalog catalog;
    workload::FleetJob job;
    job.spec = catalog.study_apps()[0];
    job.profile = droidsim::LgV10();
    job.seed = workload::FleetSeed(977, 0);
    job.session = simkit::Seconds(10);
    job.record_path = TempPath("donor.hdsl");
    workload::FleetJobResult result = workload::RunFleetJob(job);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(result.record_ok) << result.record_error;
    std::ifstream in(job.record_path, std::ios::binary);
    auto* data = new std::string(std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>());
    EXPECT_FALSE(data->empty());
    return data;
  }();
  return *bytes;
}

// A v3 container holding `ids` copies of the donor log, split into wire frames.
std::vector<std::string> WireFrames(const std::vector<uint64_t>& ids) {
  std::vector<hangdoctor::SessionLogSlice> sessions;
  for (uint64_t id : ids) {
    sessions.push_back({telemetry::SessionId{id}, DonorLogBytes()});
  }
  std::string container, error;
  EXPECT_TRUE(hangdoctor::MuxSessionLogs(sessions, {}, &container, &error)) << error;
  std::vector<std::string> frames;
  EXPECT_TRUE(netd::ContainerToWireFrames(container, &frames, &error)) << error;
  return frames;
}

netd::ServerOptions SocketpairOptions() {
  netd::ServerOptions options;
  options.listen = false;
  options.workers = 1;
  options.rings = 1;
  options.service.shards = 2;
  return options;
}

// Adopts one end of a socketpair into the server, hands the other to a client.
netd::NetClient ConnectPair(netd::NetServer& server) {
  int sv[2] = {-1, -1};
  EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  server.AdoptConnection(sv[0]);
  netd::NetClient client;
  client.Adopt(sv[1]);
  return client;
}

// Reads replies until EOF (server closed the connection), appending to `replies`.
void ReadUntilEof(netd::NetClient& client, std::vector<Reply>* replies) {
  Reply reply;
  while (client.ReadReply(&reply)) {
    replies->push_back(reply);
  }
}

TEST(NetdWireTest, FrameRoundTripIsByteIdentical) {
  // Payload sizes straddling every varint-length boundary the framing layer can hit.
  std::vector<size_t> sizes = {1, 2, 127, 128, 129, 16383, 16384, 16385, 100000};
  std::string stream;
  std::vector<std::string> payloads;
  for (size_t i = 0; i < sizes.size(); ++i) {
    std::string payload(sizes[i], static_cast<char>('a' + (i % 26)));
    payload[0] = static_cast<char>(i);
    payloads.push_back(payload);
    netd::AppendFrame(&stream, payload);
  }
  netd::FrameSplitter splitter;
  splitter.Feed(stream.data(), stream.size());
  for (const std::string& expected : payloads) {
    std::string got;
    ASSERT_TRUE(splitter.Next(&got));
    EXPECT_EQ(got, expected);
  }
  std::string leftover;
  EXPECT_FALSE(splitter.Next(&leftover));
  EXPECT_TRUE(splitter.ok());
}

TEST(NetdWireTest, ContainerSplitsLosslesslyIntoWireFrames) {
  std::vector<hangdoctor::SessionLogSlice> sessions = {
      {telemetry::SessionId{1}, DonorLogBytes()}, {telemetry::SessionId{2}, DonorLogBytes()}};
  std::string container, error;
  ASSERT_TRUE(hangdoctor::MuxSessionLogs(sessions, {}, &container, &error)) << error;
  std::vector<std::string> frames;
  ASSERT_TRUE(netd::ContainerToWireFrames(container, &frames, &error)) << error;
  // The HELLO prefix plus the concatenated frame payloads reproduce the container exactly —
  // the invariant that makes wire ingest the same grammar as on-disk replay.
  hangdoctor::SessionLogLayout layout;
  ASSERT_TRUE(hangdoctor::ScanMuxLog(container, &layout, &error)) << error;
  std::string reassembled = container.substr(0, layout.header_end);
  for (const std::string& frame : frames) {
    reassembled += frame;
  }
  EXPECT_EQ(reassembled, container);
}

TEST(NetdProtocolTest, HelloNegotiatesV3AndV4) {
  for (uint32_t version : {3u, 4u}) {
    netd::NetServer server(SocketpairOptions());
    netd::NetClient client = ConnectPair(server);
    ASSERT_TRUE(client.SendHello(version));
    Reply reply;
    ASSERT_TRUE(client.ReadReply(&reply)) << client.error();
    EXPECT_EQ(reply.tag, ReplyTag::kHelloOk);
    EXPECT_EQ(reply.version, version);

    // The negotiated connection actually works end to end.
    for (const std::string& frame : WireFrames({7})) {
      ASSERT_TRUE(client.SendFrame(frame));
    }
    std::vector<Reply> replies;
    ReadUntilEof(client, &replies);
    ASSERT_EQ(replies.size(), 2u);
    EXPECT_EQ(replies[0].tag, ReplyTag::kSessionClosed);
    EXPECT_EQ(replies[0].session_id, 7u);
    EXPECT_TRUE(replies[0].stream_ok);
    EXPECT_EQ(replies[1].tag, ReplyTag::kBye);
    EXPECT_EQ(replies[1].sessions_closed, 1u);
    server.Stop();
    auto outcomes = server.TakeResults();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].aborted);
    EXPECT_EQ(outcomes[0].id.value, 7u);
  }
}

TEST(NetdProtocolTest, UnknownHelloVersionIsRejected) {
  for (uint32_t version : {0u, 2u, 5u, 99u}) {
    netd::NetServer server(SocketpairOptions());
    netd::NetClient client = ConnectPair(server);
    ASSERT_TRUE(client.SendHello(version));
    Reply reply;
    ASSERT_TRUE(client.ReadReply(&reply));
    EXPECT_EQ(reply.tag, ReplyTag::kError);
    EXPECT_NE(reply.message.find("unsupported wire version"), std::string::npos)
        << reply.message;
    // Sticky: the server closes; no further replies.
    std::vector<Reply> rest;
    ReadUntilEof(client, &rest);
    EXPECT_TRUE(rest.empty());
    EXPECT_EQ(server.stats().protocol_errors.load(), 1);
  }
}

TEST(NetdProtocolTest, BadHelloMagicIsRejected) {
  netd::NetServer server(SocketpairOptions());
  netd::NetClient client = ConnectPair(server);
  ASSERT_TRUE(client.SendFrame("XXXX\x04"));
  Reply reply;
  ASSERT_TRUE(client.ReadReply(&reply));
  EXPECT_EQ(reply.tag, ReplyTag::kError);
  EXPECT_NE(reply.message.find("bad magic"), std::string::npos);
}

TEST(NetdProtocolTest, OneByteDripAndCoalescedWritesDecodeIdentically) {
  std::vector<std::string> frames = WireFrames({11, 12});
  std::string stream;
  netd::AppendFrame(&stream, netd::BuildHello(4));
  for (const std::string& frame : frames) {
    netd::AppendFrame(&stream, frame);
  }
  for (size_t chunk : {size_t{1}, stream.size()}) {
    netd::NetServer server(SocketpairOptions());
    netd::NetClient client = ConnectPair(server);
    ASSERT_TRUE(client.SendRaw(stream, chunk));
    std::vector<Reply> replies;
    ReadUntilEof(client, &replies);
    ASSERT_EQ(replies.size(), 4u) << "chunk=" << chunk;  // hello-ok, 2 closes, bye
    EXPECT_EQ(replies[0].tag, ReplyTag::kHelloOk);
    EXPECT_EQ(replies[1].tag, ReplyTag::kSessionClosed);
    EXPECT_EQ(replies[2].tag, ReplyTag::kSessionClosed);
    EXPECT_EQ(replies[3].tag, ReplyTag::kBye);
    EXPECT_EQ(replies[3].sessions_closed, 2u);
    server.Stop();
    EXPECT_EQ(server.TakeResults().size(), 2u);
  }
}

TEST(NetdProtocolTest, OversizedFrameLengthIsStickyReject) {
  netd::ServerOptions options = SocketpairOptions();
  options.max_frame_bytes = 4096;
  netd::NetServer server(options);
  netd::NetClient client = ConnectPair(server);
  ASSERT_TRUE(client.SendHello(4));
  Reply reply;
  ASSERT_TRUE(client.ReadReply(&reply));
  ASSERT_EQ(reply.tag, ReplyTag::kHelloOk);
  // A frame announcing 1 MiB against a 4 KiB cap: rejected on the length alone, before any
  // payload arrives.
  std::string prefix;
  netd::PutVarint(&prefix, 1u << 20);
  ASSERT_TRUE(client.SendRaw(prefix));
  ASSERT_TRUE(client.ReadReply(&reply));
  EXPECT_EQ(reply.tag, ReplyTag::kError);
  EXPECT_NE(reply.message.find("exceeds cap"), std::string::npos) << reply.message;
  // Sticky: a perfectly valid follow-up frame elicits nothing; the connection just closes.
  client.SendFrame(netd::BuildHello(4));
  std::vector<Reply> rest;
  ReadUntilEof(client, &rest);
  EXPECT_TRUE(rest.empty());
}

TEST(NetdProtocolTest, TruncatedFrameAbortsLiveSessionsWithoutCollateral) {
  netd::NetServer server(SocketpairOptions());

  // Neighbor connection: same shape, no fault — must be untouched by the torn one.
  netd::NetClient calm = ConnectPair(server);
  ASSERT_TRUE(calm.SendHello(4));

  netd::NetClient torn = ConnectPair(server);
  ASSERT_TRUE(torn.SendHello(4));
  std::vector<std::string> frames = WireFrames({21});
  // Open the session, push a few records, then tear a frame in half and vanish.
  for (size_t i = 0; i + 2 < frames.size() && i < 4; ++i) {
    ASSERT_TRUE(torn.SendFrame(frames[i]));
  }
  ASSERT_TRUE(torn.SendTornFrame(frames[4], frames[4].size() / 2));

  for (const std::string& frame : WireFrames({22})) {
    ASSERT_TRUE(calm.SendFrame(frame));
  }
  std::vector<Reply> calm_replies;
  ReadUntilEof(calm, &calm_replies);

  server.Stop();
  auto outcomes = server.TakeResults();
  ASSERT_EQ(outcomes.size(), 2u);
  bool saw_abort = false, saw_close = false;
  for (const auto& outcome : outcomes) {
    if (outcome.id.value == 21) {
      EXPECT_TRUE(outcome.aborted);
      EXPECT_NE(outcome.stream_error.find("closed mid-session"), std::string::npos)
          << outcome.stream_error;
      saw_abort = true;
    } else {
      EXPECT_EQ(outcome.id.value, 22u);
      EXPECT_FALSE(outcome.aborted);
      EXPECT_TRUE(outcome.result.stream_ok);
      saw_close = true;
    }
  }
  EXPECT_TRUE(saw_abort);
  EXPECT_TRUE(saw_close);
  ASSERT_GE(calm_replies.size(), 2u);
  EXPECT_EQ(calm_replies[1].tag, ReplyTag::kSessionClosed);
  EXPECT_EQ(server.live_sessions(), 0u);
  EXPECT_EQ(server.live_session_bytes(), 0);
}

TEST(NetdProtocolTest, RecordForUnopenedSessionIsStickyProtocolError) {
  netd::NetServer server(SocketpairOptions());
  netd::NetClient client = ConnectPair(server);
  ASSERT_TRUE(client.SendHello(4));
  std::vector<std::string> frames = WireFrames({31});
  // Skip the open frame; send the first record frame directly.
  ASSERT_TRUE(client.SendFrame(frames[1]));
  std::vector<Reply> replies;
  ReadUntilEof(client, &replies);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].tag, ReplyTag::kHelloOk);
  EXPECT_EQ(replies[1].tag, ReplyTag::kError);
  EXPECT_NE(replies[1].message.find("unopened session"), std::string::npos)
      << replies[1].message;
}

TEST(NetdProtocolTest, BusyAdmissionReplyIsStructuredAndScopedToOneSession) {
  netd::ServerOptions options = SocketpairOptions();
  // Budget: exactly one donor-sized open fits.
  options.session_overhead_bytes = 1024;
  options.session_budget_bytes =
      static_cast<int64_t>(WireFrames({1})[0].size()) + options.session_overhead_bytes + 512;
  netd::NetServer server(options);
  netd::NetClient client = ConnectPair(server);
  ASSERT_TRUE(client.SendHello(4));
  for (const std::string& frame : WireFrames({41, 42})) {
    ASSERT_TRUE(client.SendFrame(frame));
  }
  std::vector<Reply> replies;
  ReadUntilEof(client, &replies);
  // hello-ok, one busy (for whichever open came second), one close, bye.
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_EQ(replies[0].tag, ReplyTag::kHelloOk);
  EXPECT_EQ(replies[1].tag, ReplyTag::kBusy);
  EXPECT_GT(replies[1].session_id, 0u);
  EXPECT_EQ(replies[1].budget_bytes, static_cast<uint64_t>(options.session_budget_bytes));
  EXPECT_GT(replies[1].live_bytes, 0u);
  EXPECT_EQ(replies[2].tag, ReplyTag::kSessionClosed);
  EXPECT_EQ(replies[3].tag, ReplyTag::kBye);
  EXPECT_EQ(replies[3].sessions_closed, 1u);
  server.Stop();
  auto outcomes = server.TakeResults();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].aborted);
  EXPECT_EQ(server.stats().sessions_refused.load(), 1);
  // The refused session's budget was never charged; the closed one's was released.
  EXPECT_EQ(server.live_session_bytes(), 0);
}

TEST(NetdProtocolTest, DuplicateSessionAcrossConnectionsIsRejected) {
  netd::NetServer server(SocketpairOptions());
  netd::NetClient first = ConnectPair(server);
  netd::NetClient second = ConnectPair(server);
  ASSERT_TRUE(first.SendHello(4));
  ASSERT_TRUE(second.SendHello(4));
  std::vector<std::string> frames = WireFrames({51});
  // Both connections open session 51; the first (applied before the second is even sent,
  // hence the poll) wins, the other goes sticky-error.
  ASSERT_TRUE(first.SendFrame(frames[0]));
  Reply reply;
  ASSERT_TRUE(first.ReadReply(&reply));
  ASSERT_EQ(reply.tag, ReplyTag::kHelloOk);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.live_sessions() != 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.live_sessions(), 1u);
  ASSERT_TRUE(second.SendFrame(frames[0]));
  std::vector<Reply> second_replies;
  ReadUntilEof(second, &second_replies);
  ASSERT_GE(second_replies.size(), 2u);
  EXPECT_EQ(second_replies.back().tag, ReplyTag::kError);
  // The winner still closes cleanly.
  for (size_t i = 1; i < frames.size(); ++i) {
    ASSERT_TRUE(first.SendFrame(frames[i]));
  }
  std::vector<Reply> first_replies;
  ReadUntilEof(first, &first_replies);
  ASSERT_GE(first_replies.size(), 2u);
  EXPECT_EQ(first_replies[first_replies.size() - 2].tag, ReplyTag::kSessionClosed);
  EXPECT_EQ(first_replies.back().tag, ReplyTag::kBye);
}

TEST(NetdProtocolTest, BackpressureOnTinyRingStillAppliesEverythingInOrder) {
  netd::ServerOptions options = SocketpairOptions();
  options.ring_capacity = 1;  // rounds up to the ring's minimum; maximal pushback
  netd::NetServer server(options);
  netd::NetClient client = ConnectPair(server);
  ASSERT_TRUE(client.SendHello(4));
  for (const std::string& frame : WireFrames({61, 62, 63, 64})) {
    ASSERT_TRUE(client.SendFrame(frame));
  }
  std::vector<Reply> replies;
  ReadUntilEof(client, &replies);
  ASSERT_EQ(replies.size(), 6u);  // hello-ok + 4 closes + bye
  EXPECT_EQ(replies.back().tag, ReplyTag::kBye);
  EXPECT_EQ(replies.back().sessions_closed, 4u);
  server.Stop();
  auto outcomes = server.TakeResults();
  ASSERT_EQ(outcomes.size(), 4u);
  for (const auto& outcome : outcomes) {
    EXPECT_FALSE(outcome.aborted);
    EXPECT_TRUE(outcome.result.stream_ok);
  }
}

TEST(NetdProtocolTest, GracefulDrainFlushesInFlightSessionReports) {
  netd::NetServer server(SocketpairOptions());
  netd::NetClient client = ConnectPair(server);
  ASSERT_TRUE(client.SendHello(4));
  Reply reply;
  ASSERT_TRUE(client.ReadReply(&reply));
  ASSERT_EQ(reply.tag, ReplyTag::kHelloOk);
  std::vector<std::string> frames = WireFrames({71});
  // Open + a prefix of the records; the session is in flight, no close frame ever sent.
  size_t sent = frames.size() / 2;
  for (size_t i = 0; i < sent; ++i) {
    ASSERT_TRUE(client.SendFrame(frames[i]));
  }
  // WaitIdle wants zero live connections; here the client stays connected on purpose, so
  // poll until the open frame has been routed and applied before pulling the drain lever.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.live_sessions() != 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.live_sessions(), 1u);

  server.BeginDrain();
  std::vector<Reply> replies;
  ReadUntilEof(client, &replies);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].tag, ReplyTag::kSessionClosed);
  EXPECT_EQ(replies[0].session_id, 71u);
  EXPECT_EQ(replies[1].tag, ReplyTag::kBye);
  server.Stop();
  auto outcomes = server.TakeResults();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].aborted);  // drained, not discarded: the report was flushed
  EXPECT_EQ(outcomes[0].id.value, 71u);
  EXPECT_EQ(server.live_sessions(), 0u);
}

}  // namespace
