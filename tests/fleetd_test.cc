// Distributed-fleet battery (DESIGN.md section 3.10), three layers deep:
//
//   Topology        pure lease/fencing/ownership bookkeeping on a fake clock: contiguous
//                   partitioning, lease renew/expiry, fence idempotence + epoch
//                   monotonicity, drain-migration moves, pins, total outage.
//   Wire + worker   the fleet control vocabulary (heartbeat / handoff / acks / session
//                   results) round-trips byte-exactly, and a live worker-role NetServer
//                   answers it correctly over a socketpair: role gating at HELLO, epoch
//                   fencing (kStaleEpoch), handoff discards, per-close kSessionResult that
//                   decodes to the replay-oracle-identical report, the self-watchdog
//                   flagging a wedged applier, and the bounded Stop() overload returning
//                   the undrained session ids.
//   End to end      the 16-app study fleet recorded once and pushed through
//                   RunDistributedFleetFromLogs at workers {1, 2, 4} x {no event,
//                   drain-migration at 50%, worker crash, heartbeat loss}: every session's
//                   report and the merged fleet report must be bit-identical (Render
//                   equality) to the in-process RunFleet oracle — migration and failover
//                   are HDSL replays of per-session-pure prefixes, so they must never show
//                   up in the output.
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/faultsim/fleet_faults.h"
#include "src/fleetd/topology.h"
#include "src/hangdoctor/detector_service.h"
#include "src/hosts/mux_log.h"
#include "src/netd/client.h"
#include "src/netd/record_codec.h"
#include "src/netd/result_codec.h"
#include "src/netd/server.h"
#include "src/netd/wire.h"
#include "src/workload/catalog.h"
#include "src/workload/distributed_fleet.h"
#include "src/workload/fleet.h"

namespace {

using fleetd::PartitionSessions;
using fleetd::SessionRange;
using fleetd::Topology;
using fleetd::TopologyOptions;
using fleetd::WorkerHealth;

// ---------------------------------------------------------------------------------------
// Topology: partitioning.
// ---------------------------------------------------------------------------------------

TEST(PartitionTest, CoversIntervalContiguouslyWithBalancedSizes) {
  for (uint64_t first : {1ull, 7ull}) {
    for (uint64_t count : {1ull, 4ull, 16ull, 17ull, 1000ull}) {
      for (int32_t workers : {1, 2, 3, 4, 7}) {
        uint64_t last = first + count - 1;
        std::vector<SessionRange> ranges = PartitionSessions(first, last, workers);
        ASSERT_EQ(ranges.size(), static_cast<size_t>(workers));
        uint64_t next = first;
        uint64_t min_size = UINT64_MAX;
        uint64_t max_size = 0;
        for (const SessionRange& r : ranges) {
          if (r.empty()) {
            min_size = 0;
            continue;
          }
          ASSERT_EQ(r.lo, next) << "gap or overlap";
          next = r.hi + 1;
          min_size = std::min(min_size, r.size());
          max_size = std::max(max_size, r.size());
        }
        EXPECT_EQ(next, last + 1) << "interval not fully covered";
        EXPECT_LE(max_size - min_size, 1u) << "sizes must differ by at most one";
        // Remainder at the front: sizes are non-increasing across workers.
        for (size_t i = 1; i < ranges.size(); ++i) {
          EXPECT_GE(ranges[i - 1].size(), ranges[i].size());
        }
      }
    }
  }
}

TEST(PartitionTest, MoreWorkersThanSessionsLeavesEmptyTails) {
  std::vector<SessionRange> ranges = PartitionSessions(1, 3, 5);
  ASSERT_EQ(ranges.size(), 5u);
  EXPECT_EQ(ranges[0].size(), 1u);
  EXPECT_EQ(ranges[1].size(), 1u);
  EXPECT_EQ(ranges[2].size(), 1u);
  EXPECT_TRUE(ranges[3].empty());
  EXPECT_TRUE(ranges[4].empty());
}

// ---------------------------------------------------------------------------------------
// Topology: leases, fencing, migration — all on a fake clock.
// ---------------------------------------------------------------------------------------

Topology LeasedTopology(int32_t workers, int64_t lease_ms, int64_t now_ms) {
  TopologyOptions options;
  options.lease_timeout_ms = lease_ms;
  Topology topo(workers, options);
  for (int32_t w = 0; w < workers; ++w) {
    topo.Register(w, now_ms);
  }
  return topo;
}

TEST(TopologyTest, OwnershipFollowsRangesAndPins) {
  Topology topo = LeasedTopology(2, 1000, 0);
  topo.AssignRange(1, 10);
  EXPECT_EQ(topo.OwnerOf(1), 0);
  EXPECT_EQ(topo.OwnerOf(5), 0);
  EXPECT_EQ(topo.OwnerOf(6), 1);
  EXPECT_EQ(topo.OwnerOf(10), 1);
  EXPECT_EQ(topo.OwnerOf(11), -1) << "outside every range";
  topo.PinSession(3, 1);
  EXPECT_EQ(topo.OwnerOf(3), 1) << "pins override ranges";
  EXPECT_EQ(topo.OwnerOf(4), 0);
}

TEST(TopologyTest, LeaseRenewalKeepsAckedWorkersAliveAndFencesSilentOnes) {
  Topology topo = LeasedTopology(2, 1000, 0);
  topo.AssignRange(1, 8);
  EXPECT_TRUE(topo.Tick(999).empty()) << "both leases still live";
  EXPECT_TRUE(topo.OnHeartbeatAck(0, 900, WorkerHealth{}));
  EXPECT_TRUE(topo.OnHeartbeatAck(1, 900, WorkerHealth{}));
  EXPECT_TRUE(topo.Tick(1800).empty()) << "both renewed through 1900";
  EXPECT_EQ(topo.lease_expires_ms(0), 1900);
}

TEST(TopologyTest, SilentWorkerIsFencedAndItsSessionsRetarget) {
  Topology topo = LeasedTopology(2, 1000, 0);
  topo.AssignRange(1, 8);
  uint64_t epoch_before = topo.epoch();
  EXPECT_TRUE(topo.OnHeartbeatAck(0, 900, WorkerHealth{}));
  std::vector<fleetd::FailoverDecision> decisions = topo.Tick(1500);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].victim, 1);
  EXPECT_EQ(decisions[0].target, 0);
  EXPECT_GT(decisions[0].epoch, epoch_before);
  EXPECT_EQ(decisions[0].reason, "lease expired");
  EXPECT_TRUE(topo.fenced(1));
  EXPECT_FALSE(topo.fenced(0));
  for (uint64_t id = 1; id <= 8; ++id) {
    EXPECT_EQ(topo.OwnerOf(id), 0) << "session " << id;
  }
}

TEST(TopologyTest, SelfForfeitedLeaseFencesOnTick) {
  Topology topo = LeasedTopology(2, 1000, 0);
  topo.AssignRange(1, 4);
  WorkerHealth sick;
  sick.lease_failed = true;
  EXPECT_TRUE(topo.OnHeartbeatAck(1, 100, sick));
  std::vector<fleetd::FailoverDecision> decisions = topo.Tick(200);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].victim, 1);
  EXPECT_EQ(decisions[0].reason, "lease forfeited by self-watchdog");
}

TEST(TopologyTest, FenceIsIdempotentAndEpochIsMonotonic) {
  Topology topo = LeasedTopology(3, 1000, 0);
  topo.AssignRange(1, 9);
  uint64_t e0 = topo.epoch();
  int32_t target = topo.Fence(2, "crash");
  EXPECT_EQ(target, 0) << "lowest live worker";
  uint64_t e1 = topo.epoch();
  EXPECT_GT(e1, e0);
  EXPECT_EQ(topo.Fence(2, "again"), -1) << "refencing is a no-op";
  EXPECT_EQ(topo.epoch(), e1) << "no epoch bump on refence";
  EXPECT_EQ(topo.fence_reason(2), "crash") << "first reason sticks";
  EXPECT_FALSE(topo.OnHeartbeatAck(2, 10, WorkerHealth{}))
      << "a fenced worker's acks must not resurrect it";
  EXPECT_EQ(topo.live_workers(), 2);
}

TEST(TopologyTest, FencingEveryWorkerIsTotalOutage) {
  Topology topo = LeasedTopology(2, 1000, 0);
  topo.AssignRange(1, 4);
  EXPECT_EQ(topo.Fence(0, "crash"), 1);
  EXPECT_EQ(topo.Fence(1, "crash"), -1) << "no live target remains";
  EXPECT_EQ(topo.live_workers(), 0);
  EXPECT_EQ(topo.OwnerOf(1), -1);
}

TEST(TopologyTest, MoveRangesTransfersOwnershipAndBumpsEpoch) {
  Topology topo = LeasedTopology(2, 1000, 0);
  topo.AssignRange(1, 8);
  topo.PinSession(7, 0);
  uint64_t e0 = topo.epoch();
  uint64_t e1 = topo.MoveRanges(0, 1);
  EXPECT_GT(e1, e0);
  EXPECT_EQ(topo.epoch(), e1);
  for (uint64_t id = 1; id <= 8; ++id) {
    EXPECT_EQ(topo.OwnerOf(id), 1) << "session " << id;
  }
  EXPECT_FALSE(topo.fenced(0)) << "drain-migration keeps the source alive";
  EXPECT_THROW(topo.MoveRanges(0, 0), std::invalid_argument);
  EXPECT_THROW(topo.MoveRanges(-1, 1), std::invalid_argument);
  topo.Fence(0, "crash");
  EXPECT_THROW(topo.MoveRanges(0, 1), std::invalid_argument) << "fenced source";
  EXPECT_THROW(topo.MoveRanges(1, 0), std::invalid_argument) << "fenced target";
}

// ---------------------------------------------------------------------------------------
// Wire: the fleet control vocabulary round-trips, and control tags stay disjoint from the
// mux-container grammar.
// ---------------------------------------------------------------------------------------

TEST(FleetWireTest, HelloCarriesWorkerRole) {
  for (uint32_t version = netd::kWireVersionMin; version <= netd::kWireVersionMax;
       ++version) {
    for (netd::HelloRole role : {netd::HelloRole::kClient, netd::HelloRole::kWorker}) {
      uint32_t got_version = 0;
      netd::HelloRole got_role = netd::HelloRole::kClient;
      std::string error;
      ASSERT_TRUE(
          netd::ParseHello(netd::BuildHello(version, role), &got_version, &got_role, &error))
          << error;
      EXPECT_EQ(got_version, version);
      EXPECT_EQ(got_role, role);
    }
  }
}

TEST(FleetWireTest, ControlFramesRoundTripAndStayDisjointFromMuxTags) {
  static_assert(netd::kCtrlBase >= 0x40, "control tags must not collide with mux tags");
  std::string hb = netd::BuildHeartbeat(12345);
  ASSERT_FALSE(hb.empty());
  EXPECT_GE(static_cast<uint8_t>(hb[0]), netd::kCtrlBase);
  uint64_t epoch = 0;
  std::string error;
  ASSERT_TRUE(netd::ParseHeartbeat(hb, &epoch, &error)) << error;
  EXPECT_EQ(epoch, 12345u);
  EXPECT_FALSE(netd::ParseHeartbeat(hb.substr(0, 1), &epoch, &error)) << "truncated";

  for (const std::vector<uint64_t>& ids :
       {std::vector<uint64_t>{}, std::vector<uint64_t>{1, 5, 1u << 20}}) {
    std::string handoff = netd::BuildHandoff(7, ids);
    EXPECT_GE(static_cast<uint8_t>(handoff[0]), netd::kCtrlBase);
    uint64_t got_epoch = 0;
    std::vector<uint64_t> got_ids;
    ASSERT_TRUE(netd::ParseHandoff(handoff, &got_epoch, &got_ids, &error)) << error;
    EXPECT_EQ(got_epoch, 7u);
    EXPECT_EQ(got_ids, ids);
  }
}

TEST(FleetWireTest, FleetRepliesRoundTripThroughParseReply) {
  netd::Reply reply;
  std::string error;
  ASSERT_TRUE(netd::ParseReply(netd::BuildHeartbeatAck(9, 3, 77, true, false), &reply,
                               &error))
      << error;
  EXPECT_EQ(reply.tag, netd::ReplyTag::kHeartbeatAck);
  EXPECT_EQ(reply.epoch, 9u);
  EXPECT_EQ(reply.live_sessions, 3u);
  EXPECT_EQ(reply.records_applied, 77u);
  EXPECT_TRUE(reply.applier_stuck);
  EXPECT_FALSE(reply.lease_failed);

  ASSERT_TRUE(netd::ParseReply(netd::BuildStaleEpoch(41), &reply, &error)) << error;
  EXPECT_EQ(reply.tag, netd::ReplyTag::kStaleEpoch);
  EXPECT_EQ(reply.epoch, 41u);

  ASSERT_TRUE(netd::ParseReply(netd::BuildHandoffAck(6, 4), &reply, &error)) << error;
  EXPECT_EQ(reply.tag, netd::ReplyTag::kHandoffAck);
  EXPECT_EQ(reply.epoch, 6u);
  EXPECT_EQ(reply.discarded, 4u);

  ASSERT_TRUE(netd::ParseReply(netd::BuildSessionResult(12, "payload-bytes"), &reply,
                               &error))
      << error;
  EXPECT_EQ(reply.tag, netd::ReplyTag::kSessionResult);
  EXPECT_EQ(reply.session_id, 12u);
  EXPECT_EQ(reply.result, "payload-bytes");

  std::string ack = netd::BuildHeartbeatAck(9, 3, 77, true, false);
  EXPECT_FALSE(netd::ParseReply(ack.substr(0, ack.size() - 1), &reply, &error))
      << "truncated ack must not parse";
}

TEST(FleetWireTest, SessionResultCodecRoundTripsAndRejectsTruncation) {
  hangdoctor::SessionResult result;
  result.id = telemetry::SessionId{42};
  result.app_package = "com.example.app";
  result.device_id = 3;
  result.stream_ok = false;
  result.stream_error = "torn mid-frame";
  result.stack_samples = 17;
  result.discovered = {"android.net.Socket.connect", "com.x.Parser.parse"};
  std::string bytes = netd::EncodeSessionResult(result);
  hangdoctor::SessionResult decoded;
  std::string error;
  ASSERT_TRUE(netd::DecodeSessionResult(bytes, &decoded, &error)) << error;
  EXPECT_EQ(decoded.id.value, 42u);
  EXPECT_EQ(decoded.app_package, "com.example.app");
  EXPECT_EQ(decoded.device_id, 3);
  EXPECT_FALSE(decoded.stream_ok);
  EXPECT_EQ(decoded.stream_error, "torn mid-frame");
  EXPECT_EQ(decoded.stack_samples, 17);
  EXPECT_EQ(decoded.discovered, result.discovered);
  EXPECT_EQ(decoded.report.Render(4), result.report.Render(4));
  for (size_t cut = 0; cut < bytes.size(); cut += std::max<size_t>(1, bytes.size() / 16)) {
    EXPECT_FALSE(netd::DecodeSessionResult(bytes.substr(0, cut), &decoded, &error))
        << "truncation at " << cut << " must not decode";
  }
}

// ---------------------------------------------------------------------------------------
// Fleet fault plans: deterministic, bounded, survivable.
// ---------------------------------------------------------------------------------------

TEST(FleetFaultsTest, PlansAreDeterministicAndAlwaysLeaveASurvivor) {
  faultsim::FleetFaultProfile chaos = faultsim::FleetFaultProfile::Named("fleet-chaos");
  for (uint64_t seed : {1ull, 7ull, 4242ull}) {
    for (int32_t workers : {2, 3, 4, 8}) {
      std::vector<faultsim::FleetFaultEvent> a =
          faultsim::PlanFleetFaults(chaos, seed, workers);
      std::vector<faultsim::FleetFaultEvent> b =
          faultsim::PlanFleetFaults(chaos, seed, workers);
      ASSERT_EQ(a.size(), b.size());
      std::vector<bool> victim(static_cast<size_t>(workers), false);
      size_t victims = 0;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].worker, b[i].worker);
        EXPECT_EQ(a[i].at, b[i].at);
        ASSERT_GE(a[i].worker, 0);
        ASSERT_LT(a[i].worker, workers);
        EXPECT_FALSE(victim[static_cast<size_t>(a[i].worker)]) << "victims must be distinct";
        victim[static_cast<size_t>(a[i].worker)] = true;
        ++victims;
        EXPECT_GE(a[i].at, 0.1);
        EXPECT_LE(a[i].at, 0.9);
        if (i > 0) {
          EXPECT_LE(a[i - 1].at, a[i].at) << "plan must be sorted by time";
        }
      }
      EXPECT_LT(victims, static_cast<size_t>(workers)) << "at least one survivor";
    }
  }
  EXPECT_TRUE(faultsim::PlanFleetFaults(chaos, 1, 1).empty())
      << "a single worker is never a victim";
  EXPECT_TRUE(
      faultsim::PlanFleetFaults(faultsim::FleetFaultProfile::Named("none"), 1, 4).empty());
  EXPECT_THROW(faultsim::FleetFaultProfile::Named("no-such-profile"), std::invalid_argument);
}

// ---------------------------------------------------------------------------------------
// Live worker battery: one NetServer in worker mode behind a socketpair.
// ---------------------------------------------------------------------------------------

const workload::Catalog& SharedCatalog() {
  static const workload::Catalog* catalog = new workload::Catalog();
  return *catalog;
}

std::string TempDir() {
  std::filesystem::path dir = std::filesystem::temp_directory_path() /
                              ("hd_fleetd_test_" + std::to_string(getpid()));
  std::filesystem::create_directories(dir);
  return dir.string();
}

struct RecordedFleet {
  workload::FleetSummary oracle;                      // per-job (service = false) results
  std::vector<std::string> logs;                      // recorded HDSL bytes, job order
  std::vector<hangdoctor::SessionLogSlice> sessions;  // id = job index + 1
};

// Records the study fleet once; every topology below replays the same bytes.
const RecordedFleet& Fleet() {
  static const RecordedFleet* fleet = [] {
    auto* f = new RecordedFleet();
    const workload::Catalog& catalog = SharedCatalog();
    std::string dir = TempDir();
    std::vector<workload::FleetJob> jobs;
    for (const droidsim::AppSpec* spec : catalog.study_apps()) {
      workload::FleetJob job;
      job.spec = spec;
      job.profile = droidsim::LgV10();
      job.seed = workload::FleetSeed(4242, jobs.size());
      job.session = simkit::Seconds(30);
      job.device_id = static_cast<int32_t>(jobs.size() % 4);
      job.record_path = dir + "/job_" + std::to_string(jobs.size()) + ".hdsl";
      jobs.push_back(job);
    }
    f->oracle = workload::RunFleet(jobs, {.jobs = 2, .service = false});
    EXPECT_EQ(f->oracle.failed, 0u);
    for (const auto& job : jobs) {
      std::ifstream in(job.record_path, std::ios::binary);
      f->logs.emplace_back(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
      EXPECT_FALSE(f->logs.back().empty()) << job.record_path;
    }
    for (size_t i = 0; i < f->logs.size(); ++i) {
      f->sessions.push_back({telemetry::SessionId{i + 1}, f->logs[i]});
    }
    return f;
  }();
  return *fleet;
}

// One recorded session's wire frames (open + records + close), end-of-container dropped.
std::vector<std::string> SessionFrames(size_t session_index) {
  const RecordedFleet& fleet = Fleet();
  std::string container;
  std::string error;
  std::vector<hangdoctor::SessionLogSlice> one{fleet.sessions[session_index]};
  EXPECT_TRUE(hangdoctor::MuxSessionLogs(one, {}, &container, &error)) << error;
  std::vector<std::string> frames;
  EXPECT_TRUE(netd::ContainerToWireFrames(container, &frames, &error)) << error;
  while (!frames.empty() &&
         static_cast<uint8_t>(frames.back()[0]) !=
             static_cast<uint8_t>(hangdoctor::MuxFrameTag::kCloseSession)) {
    frames.pop_back();
  }
  return frames;
}

netd::ServerOptions WorkerOptions() {
  netd::ServerOptions options;
  options.workers = 1;
  options.rings = 2;
  options.service.shards = 4;
  options.listen = false;
  options.allow_worker_role = true;
  return options;
}

// Adopts one end of a socketpair into `server`, returns a HELLO'd worker-role client on
// the other end.
netd::NetClient WorkerLink(netd::NetServer* server) {
  int sv[2];
  EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv), 0);
  server->AdoptConnection(sv[0]);
  netd::NetClient client;
  client.Adopt(sv[1]);
  EXPECT_TRUE(client.SendHello(netd::kWireVersionMax, netd::HelloRole::kWorker));
  netd::Reply reply;
  EXPECT_TRUE(client.ReadReply(&reply)) << client.error();
  EXPECT_EQ(reply.tag, netd::ReplyTag::kHelloOk);
  return client;
}

TEST(WorkerServerTest, WorkerRoleIsRejectedUnlessAllowed) {
  netd::ServerOptions options = WorkerOptions();
  options.allow_worker_role = false;
  netd::NetServer server(options);
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv), 0);
  server.AdoptConnection(sv[0]);
  netd::NetClient client;
  client.Adopt(sv[1]);
  ASSERT_TRUE(client.SendHello(netd::kWireVersionMax, netd::HelloRole::kWorker));
  netd::Reply reply;
  ASSERT_TRUE(client.ReadReply(&reply)) << client.error();
  EXPECT_EQ(reply.tag, netd::ReplyTag::kError);
  EXPECT_NE(reply.message.find("worker role"), std::string::npos) << reply.message;
  server.Stop();
}

TEST(WorkerServerTest, HeartbeatAcksAndStaleEpochsAreFenced) {
  netd::NetServer server(WorkerOptions());
  netd::NetClient client = WorkerLink(&server);
  ASSERT_TRUE(client.SendFrame(netd::BuildHeartbeat(5)));
  netd::Reply reply;
  ASSERT_TRUE(client.ReadReply(&reply)) << client.error();
  ASSERT_EQ(reply.tag, netd::ReplyTag::kHeartbeatAck);
  EXPECT_EQ(reply.epoch, 5u);
  EXPECT_EQ(reply.live_sessions, 0u);
  EXPECT_FALSE(reply.applier_stuck);
  EXPECT_FALSE(reply.lease_failed);
  EXPECT_EQ(server.lease_epoch(), 5u);

  // An older epoch marks a superseded coordinator: answered kStaleEpoch, not acked.
  ASSERT_TRUE(client.SendFrame(netd::BuildHeartbeat(3)));
  ASSERT_TRUE(client.ReadReply(&reply)) << client.error();
  ASSERT_EQ(reply.tag, netd::ReplyTag::kStaleEpoch);
  EXPECT_EQ(reply.epoch, 5u) << "carries the newest epoch seen";
  EXPECT_EQ(server.stats().stale_epochs.load(), 1);
  EXPECT_EQ(server.lease_epoch(), 5u);

  // A newer epoch is adopted.
  ASSERT_TRUE(client.SendFrame(netd::BuildHeartbeat(9)));
  ASSERT_TRUE(client.ReadReply(&reply)) << client.error();
  ASSERT_EQ(reply.tag, netd::ReplyTag::kHeartbeatAck);
  EXPECT_EQ(server.lease_epoch(), 9u);
  EXPECT_EQ(server.stats().heartbeats.load(), 2);
  server.Stop();
}

TEST(WorkerServerTest, CloseEmitsSessionResultIdenticalToOracle) {
  const RecordedFleet& fleet = Fleet();
  netd::NetServer server(WorkerOptions());
  netd::NetClient client = WorkerLink(&server);
  for (const std::string& frame : SessionFrames(0)) {
    ASSERT_TRUE(client.SendFrame(frame)) << client.error();
  }
  bool saw_result = false;
  bool saw_closed = false;
  netd::Reply reply;
  while ((!saw_result || !saw_closed) && client.ReadReply(&reply)) {
    if (reply.tag == netd::ReplyTag::kSessionResult) {
      saw_result = true;
      EXPECT_EQ(reply.session_id, 1u);
      hangdoctor::SessionResult result;
      std::string error;
      ASSERT_TRUE(netd::DecodeSessionResult(reply.result, &result, &error)) << error;
      EXPECT_TRUE(result.stream_ok) << result.stream_error;
      EXPECT_EQ(result.app_package, fleet.oracle.jobs[0].app_package);
      EXPECT_EQ(result.report.Render(4), fleet.oracle.jobs[0].report.Render(4))
          << "wire-shipped result must be bit-identical to the replay oracle";
    } else if (reply.tag == netd::ReplyTag::kSessionClosed) {
      saw_closed = true;
      EXPECT_EQ(reply.session_id, 1u);
      EXPECT_TRUE(reply.stream_ok);
    }
  }
  EXPECT_TRUE(saw_result) << client.error();
  EXPECT_TRUE(saw_closed) << client.error();
  server.Stop();
}

TEST(WorkerServerTest, HandoffDiscardsLiveSessionsAndAcks) {
  netd::NetServer server(WorkerOptions());
  netd::NetClient client = WorkerLink(&server);

  // A handoff naming no live session acks immediately with nothing discarded.
  ASSERT_TRUE(client.SendFrame(netd::BuildHandoff(2, {99, 100})));
  netd::Reply reply;
  ASSERT_TRUE(client.ReadReply(&reply)) << client.error();
  ASSERT_EQ(reply.tag, netd::ReplyTag::kHandoffAck);
  EXPECT_EQ(reply.epoch, 2u);
  EXPECT_EQ(reply.discarded, 0u);

  // Open session 1 (no close), then hand it off: discarded once the applier has drained
  // everything routed before the discard.
  std::vector<std::string> frames = SessionFrames(0);
  for (size_t i = 0; i + 1 < frames.size(); ++i) {  // all but the close frame
    ASSERT_TRUE(client.SendFrame(frames[i])) << client.error();
  }
  ASSERT_TRUE(client.SendFrame(netd::BuildHandoff(3, {1})));
  ASSERT_TRUE(client.ReadReply(&reply)) << client.error();
  ASSERT_EQ(reply.tag, netd::ReplyTag::kHandoffAck);
  EXPECT_EQ(reply.epoch, 3u);
  EXPECT_EQ(reply.discarded, 1u);
  EXPECT_EQ(server.stats().sessions_migrated.load(), 1);
  EXPECT_EQ(server.live_sessions(), 0u) << "the discarded session must not linger";

  // A stale-epoch handoff is refused outright.
  ASSERT_TRUE(client.SendFrame(netd::BuildHandoff(1, {5})));
  ASSERT_TRUE(client.ReadReply(&reply)) << client.error();
  EXPECT_EQ(reply.tag, netd::ReplyTag::kStaleEpoch);
  server.Stop();
}

TEST(WorkerServerTest, WatchdogFlagsWedgedApplierAndBoundedStopReturnsUndrained) {
  std::atomic<bool> wedged{false};
  std::atomic<bool> release{false};
  std::atomic<int> session2_applies{0};
  netd::ServerOptions options = WorkerOptions();
  options.watchdog_timeout_ms = 50;
  options.watchdog_poll_ms = 10;
  // Wedge on session 2's SECOND apply (its first record): the open must land first so the
  // session is live in the service — that is what the bounded Stop() reports as undrained.
  options.before_apply = [&](uint64_t id) {
    if (id == 2 && session2_applies.fetch_add(1) == 1) {
      wedged.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };
  netd::NetServer server(options);
  // A failed ASSERT below must still release the wedge before the server's destructor
  // joins the applier, or the whole test binary hangs on the latch.
  struct ReleaseOnExit {
    std::atomic<bool>* flag;
    ~ReleaseOnExit() { flag->store(true); }
  } release_guard{&release};
  netd::NetClient client = WorkerLink(&server);

  // Session 1 travels cleanly first (so its replies cannot queue behind the wedge)...
  for (const std::string& frame : SessionFrames(0)) {
    ASSERT_TRUE(client.SendFrame(frame)) << client.error();
  }
  bool saw_closed = false;
  bool saw_result = false;
  netd::Reply reply;
  while ((!saw_closed || !saw_result) && client.ReadReply(&reply)) {
    saw_closed = saw_closed || reply.tag == netd::ReplyTag::kSessionClosed;
    saw_result = saw_result || reply.tag == netd::ReplyTag::kSessionResult;
  }
  ASSERT_TRUE(saw_closed && saw_result) << client.error();

  // ...then session 2's first apply wedges its applier on the latch. Only a handful of
  // frames travel: the wedged ring drains nothing, so flooding the whole session would
  // fill it, park the connection, and block this thread's sends forever.
  std::vector<std::string> frames = SessionFrames(1);
  for (size_t i = 0; i < std::min<size_t>(frames.size() - 1, 8); ++i) {
    ASSERT_TRUE(client.SendFrame(frames[i])) << client.error();
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((!server.applier_stuck() || !server.lease_failed()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(wedged.load());
  EXPECT_TRUE(server.applier_stuck()) << "watchdog must flag the wedged applier";
  EXPECT_TRUE(server.lease_failed()) << "a wedge past the timeout forfeits the lease";
  EXPECT_GE(server.stats().watchdog_trips.load(), 1);

  // The wedge is visible on the wire: heartbeat health carries both flags.
  ASSERT_TRUE(client.SendFrame(netd::BuildHeartbeat(1)));
  ASSERT_TRUE(client.ReadReply(&reply)) << client.error();
  ASSERT_EQ(reply.tag, netd::ReplyTag::kHeartbeatAck);
  EXPECT_TRUE(reply.applier_stuck);
  EXPECT_TRUE(reply.lease_failed);

  // Bounded Stop cannot drain past the wedge: it reports the stuck session and leaves the
  // machinery joinable for later.
  std::vector<uint64_t> undrained = server.Stop(200);
  ASSERT_EQ(undrained.size(), 1u);
  EXPECT_EQ(undrained[0], 2u);

  release.store(true);
  server.Stop();  // the wedge cleared; full shutdown must now complete
}

// ---------------------------------------------------------------------------------------
// End to end: the study fleet through the shard group, against the RunFleet oracle.
// ---------------------------------------------------------------------------------------

void ExpectFleetMatchesOracle(const workload::DistributedFleetResult& result,
                              const std::string& label) {
  const RecordedFleet& fleet = Fleet();
  ASSERT_EQ(result.outcomes.size(), fleet.oracle.jobs.size()) << label;
  for (size_t i = 0; i < result.outcomes.size(); ++i) {
    const netd::NetSessionOutcome& outcome = result.outcomes[i];
    EXPECT_EQ(outcome.id.value, i + 1) << label << ": outcomes must fold in ascending id";
    EXPECT_FALSE(outcome.aborted) << label << " session " << outcome.id.value << ": "
                                  << outcome.stream_error;
    EXPECT_EQ(outcome.result.report.Render(4),
              fleet.oracle.jobs[outcome.id.value - 1].report.Render(4))
        << label << " session " << outcome.id.value;
  }
  EXPECT_EQ(result.merged.Render(4), fleet.oracle.merged_report.Render(4))
      << label << ": merged fleet report must be bit-identical to the oracle";
}

TEST(DistributedFleetTest, CleanRunsAreOracleIdenticalAtEveryWorkerCount) {
  const RecordedFleet& fleet = Fleet();
  for (int32_t workers : {1, 2, 4}) {
    workload::DistributedFleetOptions options;
    options.workers = workers;
    workload::DistributedFleetResult result =
        workload::RunDistributedFleetFromLogs(fleet.sessions, options);
    ExpectFleetMatchesOracle(result, "workers=" + std::to_string(workers));
    EXPECT_EQ(result.stats.failovers, 0) << "clean run must not fence anyone";
    EXPECT_EQ(result.stats.migrated, 0);
  }
}

TEST(DistributedFleetTest, MidRunDrainMigrationIsInvisibleInTheOutput) {
  const RecordedFleet& fleet = Fleet();
  for (int32_t workers : {2, 4}) {
    workload::DistributedFleetOptions options;
    options.workers = workers;
    options.migrate_at = 0.5;
    workload::DistributedFleetResult result =
        workload::RunDistributedFleetFromLogs(fleet.sessions, options);
    ExpectFleetMatchesOracle(result, "migrate workers=" + std::to_string(workers));
    EXPECT_GT(result.stats.migrated, 0) << "the migration must actually have happened";
    EXPECT_EQ(result.stats.failovers, 0);
  }
}

TEST(DistributedFleetTest, KilledWorkerFailsOverByReplayWithoutPerturbingReports) {
  const RecordedFleet& fleet = Fleet();
  for (int32_t workers : {2, 4}) {
    workload::DistributedFleetOptions options;
    options.workers = workers;
    options.fleet_faults = faultsim::FleetFaultProfile::Named("worker-crash");
    options.fault_seed = 7;
    workload::DistributedFleetResult result =
        workload::RunDistributedFleetFromLogs(fleet.sessions, options);
    ExpectFleetMatchesOracle(result, "crash workers=" + std::to_string(workers));
    EXPECT_GE(result.stats.failovers, 1) << "the crash must actually have fenced someone";
  }
}

TEST(DistributedFleetTest, HeartbeatSilentWorkerIsFencedWithoutPerturbingReports) {
  const RecordedFleet& fleet = Fleet();
  workload::DistributedFleetOptions options;
  options.workers = 2;
  options.fleet_faults = faultsim::FleetFaultProfile::Named("heartbeat-loss");
  options.fault_seed = 7;
  options.lease_timeout_ms = 300;
  workload::DistributedFleetResult result =
      workload::RunDistributedFleetFromLogs(fleet.sessions, options);
  ExpectFleetMatchesOracle(result, "heartbeat-loss workers=2");
  EXPECT_GE(result.stats.failovers, 1) << "lease expiry must fence the silent worker";
}

TEST(DistributedFleetTest, MigrationPlusCrashStillFoldsOracleIdentical) {
  const RecordedFleet& fleet = Fleet();
  workload::DistributedFleetOptions options;
  options.workers = 4;
  options.migrate_at = 0.3;
  options.fleet_faults = faultsim::FleetFaultProfile::Named("worker-crash");
  options.fault_seed = 11;
  workload::DistributedFleetResult result =
      workload::RunDistributedFleetFromLogs(fleet.sessions, options);
  ExpectFleetMatchesOracle(result, "migrate+crash workers=4");
}

}  // namespace
