// Unit tests for the performance-counter subsystem: event metadata, the counter hub, and the
// PMU register/multiplexing model.
#include <optional>

#include <gtest/gtest.h>

#include "src/kernelsim/kernel.h"
#include "src/perfsim/counter_hub.h"
#include "src/telemetry/counters.h"
#include "src/perfsim/perf_session.h"
#include "src/simkit/simulation.h"

namespace {

using perfsim::CounterHub;
using telemetry::PerfEventType;
using perfsim::PerfSession;
using perfsim::PmuSpec;

class ScriptSource : public kernelsim::WorkSource {
 public:
  explicit ScriptSource(std::vector<kernelsim::Segment> script) : script_(std::move(script)) {}
  kernelsim::Segment NextSegment() override {
    if (position_ >= script_.size()) {
      return kernelsim::ExitSegment{};
    }
    return script_[position_++];
  }

 private:
  std::vector<kernelsim::Segment> script_;
  size_t position_ = 0;
};

kernelsim::CpuSegment Cpu(simkit::SimDuration duration) {
  kernelsim::CpuSegment segment;
  segment.duration = duration;
  segment.syscalls_per_ms = 0.0;
  return segment;
}

struct World {
  simkit::Simulation sim;
  std::optional<kernelsim::Kernel> kernel;
  std::optional<CounterHub> hub;

  World() {
    kernel.emplace(&sim, kernelsim::KernelSpec{}, /*seed=*/1);
    hub.emplace(&kernel.value(), /*seed=*/2);
  }
};

TEST(EventsTest, NamesRoundTrip) {
  for (PerfEventType event : telemetry::AllPerfEvents()) {
    const std::string& name = telemetry::PerfEventName(event);
    EXPECT_FALSE(name.empty());
    auto back = telemetry::PerfEventFromName(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, event);
  }
  EXPECT_FALSE(telemetry::PerfEventFromName("not-an-event").has_value());
}

TEST(EventsTest, SoftwareClassificationMatchesPaper) {
  EXPECT_TRUE(telemetry::IsSoftwareEvent(PerfEventType::kContextSwitches));
  EXPECT_TRUE(telemetry::IsSoftwareEvent(PerfEventType::kTaskClock));
  EXPECT_TRUE(telemetry::IsSoftwareEvent(PerfEventType::kCpuClock));
  EXPECT_TRUE(telemetry::IsSoftwareEvent(PerfEventType::kPageFaults));
  EXPECT_TRUE(telemetry::IsSoftwareEvent(PerfEventType::kMinorFaults));
  EXPECT_TRUE(telemetry::IsSoftwareEvent(PerfEventType::kCpuMigrations));
  EXPECT_FALSE(telemetry::IsSoftwareEvent(PerfEventType::kInstructions));
  EXPECT_FALSE(telemetry::IsSoftwareEvent(PerfEventType::kCacheMisses));
  EXPECT_FALSE(telemetry::IsSoftwareEvent(PerfEventType::kL1DcacheLoads));
}

TEST(EventsTest, ModeledEventCount) {
  EXPECT_EQ(telemetry::kNumPerfEvents, 24u);
  int hardware = 0;
  for (PerfEventType event : telemetry::AllPerfEvents()) {
    hardware += telemetry::IsSoftwareEvent(event) ? 0 : 1;
  }
  // More hardware events than the LG V10's 6 registers: multiplexing is reachable.
  EXPECT_GT(hardware, 6);
}

TEST(CounterHubTest, TaskClockMatchesChargedCpu) {
  World world;
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({Cpu(simkit::Milliseconds(25))});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  world.sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(world.hub->Value(tid, PerfEventType::kTaskClock),
                   static_cast<double>(simkit::Milliseconds(25)));
  // cpu-clock tracks task-clock within a sliver.
  EXPECT_NEAR(world.hub->Value(tid, PerfEventType::kCpuClock),
              world.hub->Value(tid, PerfEventType::kTaskClock),
              0.01 * world.hub->Value(tid, PerfEventType::kTaskClock));
}

TEST(CounterHubTest, InstructionsScaleWithCpuTime) {
  World world;
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource short_source({Cpu(simkit::Milliseconds(10))});
  ScriptSource long_source({Cpu(simkit::Milliseconds(100))});
  auto tid_short = world.kernel->SpawnThread(pid, "s", &short_source);
  auto tid_long = world.kernel->SpawnThread(pid, "l", &long_source);
  world.sim.RunToCompletion();
  double ratio = world.hub->Value(tid_long, PerfEventType::kInstructions) /
                 world.hub->Value(tid_short, PerfEventType::kInstructions);
  EXPECT_NEAR(ratio, 10.0, 1.5);
}

TEST(CounterHubTest, UnknownThreadReadsZero) {
  World world;
  EXPECT_DOUBLE_EQ(world.hub->Value(1234, PerfEventType::kInstructions), 0.0);
  telemetry::CounterArray snapshot = world.hub->Snapshot(1234);
  for (double value : snapshot) {
    EXPECT_DOUBLE_EQ(value, 0.0);
  }
}

TEST(PerfSessionTest, WindowIsolatesCounts) {
  World world;
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({Cpu(simkit::Milliseconds(10)), Cpu(simkit::Milliseconds(10))});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  // Run the first segment outside the session.
  world.sim.RunUntil(simkit::Milliseconds(10));
  PerfSession session(&world.hub.value(), PmuSpec{}, /*seed=*/3);
  session.AddThread(tid);
  session.AddEvent(PerfEventType::kTaskClock);
  session.Start();
  world.sim.RunToCompletion();
  session.Stop();
  EXPECT_DOUBLE_EQ(session.Read(tid, PerfEventType::kTaskClock),
                   static_cast<double>(simkit::Milliseconds(10)));
}

TEST(PerfSessionTest, StopFreezesReadings) {
  World world;
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({Cpu(simkit::Milliseconds(10)), Cpu(simkit::Milliseconds(10))});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  PerfSession session(&world.hub.value(), PmuSpec{}, /*seed=*/3);
  session.AddThread(tid);
  session.AddEvent(PerfEventType::kTaskClock);
  session.Start();
  world.sim.RunUntil(simkit::Milliseconds(10));
  session.Stop();
  world.sim.RunToCompletion();  // further work must not leak into the stopped session
  EXPECT_DOUBLE_EQ(session.Read(tid, PerfEventType::kTaskClock),
                   static_cast<double>(simkit::Milliseconds(10)));
}

TEST(PerfSessionTest, SoftwareEventsExactEvenWhenOversubscribed) {
  World world;
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({Cpu(simkit::Milliseconds(20))});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  PerfSession session(&world.hub.value(), PmuSpec{}, /*seed=*/3);
  session.AddThread(tid);
  session.AddAllEvents();  // 15 hardware events > 6 registers
  session.Start();
  world.sim.RunToCompletion();
  session.Stop();
  EXPECT_LT(session.EnabledFraction(), 1.0);
  EXPECT_DOUBLE_EQ(session.Read(tid, PerfEventType::kTaskClock),
                   static_cast<double>(simkit::Milliseconds(20)));
}

TEST(PerfSessionTest, MultiplexingAddsHardwareNoise) {
  World world;
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource source({Cpu(simkit::Milliseconds(50))});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  PerfSession oversubscribed(&world.hub.value(), PmuSpec{}, /*seed=*/3);
  oversubscribed.AddThread(tid);
  oversubscribed.AddAllEvents();
  PerfSession exact(&world.hub.value(), PmuSpec{}, /*seed=*/4);
  exact.AddThread(tid);
  exact.AddEvent(PerfEventType::kInstructions);
  oversubscribed.Start();
  exact.Start();
  world.sim.RunToCompletion();
  oversubscribed.Stop();
  exact.Stop();
  double truth = exact.Read(tid, PerfEventType::kInstructions);
  double noisy = oversubscribed.Read(tid, PerfEventType::kInstructions);
  EXPECT_GT(truth, 0.0);
  EXPECT_NE(noisy, truth);                         // extrapolation error present...
  EXPECT_NEAR(noisy, truth, 0.25 * truth);         // ...but bounded
  EXPECT_DOUBLE_EQ(exact.EnabledFraction(), 1.0);  // a single hw event is never multiplexed
}

TEST(PerfSessionTest, ReadDifferenceSubtractsThreads) {
  World world;
  auto pid = world.kernel->CreateProcess("p");
  ScriptSource a({Cpu(simkit::Milliseconds(30))});
  ScriptSource b({Cpu(simkit::Milliseconds(10))});
  auto tid_a = world.kernel->SpawnThread(pid, "a", &a);
  auto tid_b = world.kernel->SpawnThread(pid, "b", &b);
  PerfSession session(&world.hub.value(), PmuSpec{}, /*seed=*/5);
  session.AddThread(tid_a);
  session.AddThread(tid_b);
  session.AddEvent(PerfEventType::kTaskClock);
  session.Start();
  world.sim.RunToCompletion();
  session.Stop();
  EXPECT_DOUBLE_EQ(session.ReadDifference(tid_a, tid_b, PerfEventType::kTaskClock),
                   static_cast<double>(simkit::Milliseconds(20)));
}

TEST(PerfSessionTest, DuplicateAddsIgnored) {
  World world;
  PerfSession session(&world.hub.value(), PmuSpec{}, /*seed=*/6);
  session.AddThread(1);
  session.AddThread(1);
  session.AddEvent(PerfEventType::kTaskClock);
  session.AddEvent(PerfEventType::kTaskClock);
  EXPECT_EQ(session.threads().size(), 1u);
  EXPECT_EQ(session.events().size(), 1u);
}

TEST(PerfSessionTest, ReadWithoutStartIsZero) {
  World world;
  PerfSession session(&world.hub.value(), PmuSpec{}, /*seed=*/7);
  session.AddThread(0);
  session.AddEvent(PerfEventType::kTaskClock);
  EXPECT_DOUBLE_EQ(session.Read(0, PerfEventType::kTaskClock), 0.0);
}

TEST(PerfSessionTest, ContextSwitchesVisibleThroughSession) {
  World world;
  auto pid = world.kernel->CreateProcess("p");
  kernelsim::CpuSegment busy = Cpu(simkit::Milliseconds(50));
  busy.syscalls_per_ms = 2.0;
  ScriptSource source({busy});
  auto tid = world.kernel->SpawnThread(pid, "t", &source);
  PerfSession session(&world.hub.value(), PmuSpec{}, /*seed=*/8);
  session.AddThread(tid);
  session.AddEvent(PerfEventType::kContextSwitches);
  session.Start();
  world.sim.RunToCompletion();
  session.Stop();
  EXPECT_NEAR(session.Read(tid, PerfEventType::kContextSwitches), 101.0, 5.0);
}

}  // namespace
