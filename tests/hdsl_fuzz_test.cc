// Deterministic fuzz + property harness for the HDSL session-log reader and the
// DetectorCore's SPI-stream contract.
//
// Fuzz half: structure-aware mutations (src/faultsim/hdsl_mutator.h) of the committed
// mini-corpus (tests/corpus/, integrity-pinned by MANIFEST.sha256). Every mutant either
// parses — in which case replaying it must not crash — or is rejected with a sticky,
// non-empty error. Run under ASan/UBSan in CI; "no crash" there means no overflow, no
// uninitialized read, no unbounded allocation.
//
// Property half: randomly generated *valid* SPI streams (src/faultsim/stream_gen.h) must
// drive only legal Figure 3 action-state transitions with monotone overhead accounting;
// streams with one spliced contract violation must be dropped-and-counted or sticky-failed,
// never crash.
//
// Everything is seeded: HANGDOCTOR_FUZZ_SEED (default 1) picks the master seed and
// HANGDOCTOR_FUZZ_ITERS (default 2000) the mutation budget, so a CI failure reproduces
// locally by exporting the same pair.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include <sys/socket.h>

#include "src/faultsim/hdsl_mutator.h"
#include "src/faultsim/stream_gen.h"
#include "src/hangdoctor/detector_core.h"
#include "src/hangdoctor/knowledge_base.h"
#include "src/hosts/mux_log.h"
#include "src/hosts/replay_host.h"
#include "src/hosts/session_log.h"
#include "src/netd/client.h"
#include "src/netd/record_codec.h"
#include "src/netd/server.h"
#include "src/netd/wire.h"
#include "src/simkit/rng.h"

namespace {

#ifndef HD_CORPUS_DIR
#error "HD_CORPUS_DIR must be defined by the build"
#endif

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  return std::atoll(value);
}

uint64_t FuzzSeed() { return static_cast<uint64_t>(EnvInt("HANGDOCTOR_FUZZ_SEED", 1)); }
int64_t FuzzIters() { return EnvInt("HANGDOCTOR_FUZZ_ITERS", 2000); }

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(HD_CORPUS_DIR)) {
    if (entry.path().extension() == ".hdsl") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The async mutation families target HDSL v4's async tag range without depending on the
// hosts library; pin the mirrored integers to the real enum here.
static_assert(faultsim::kFirstAsyncTag ==
              static_cast<int>(hangdoctor::SessionRecordTag::kAsyncPost));
static_assert(faultsim::kLastAsyncTag ==
              static_cast<int>(hangdoctor::SessionRecordTag::kAsyncWaitEnd));

TEST(HdslCorpusTest, EveryCorpusFileParsesAndReplays) {
  std::vector<std::string> files = CorpusFiles();
  ASSERT_EQ(files.size(), 5u) << "corpus drifted from tools/make_corpus";
  bool saw_counter_fault = false;
  bool saw_async = false;
  for (const std::string& path : files) {
    std::string bytes = FileBytes(path);
    ASSERT_FALSE(bytes.empty()) << path;
    hangdoctor::SessionLog log;
    std::string error;
    ASSERT_TRUE(hangdoctor::LoadSessionLogBytes(bytes, &log, &error)) << path << ": " << error;
    EXPECT_FALSE(log.records.empty()) << path;
    for (const hangdoctor::SessionRecord& record : log.records) {
      if (record.tag == hangdoctor::SessionRecordTag::kCounterFault) {
        saw_counter_fault = true;
      }
      if (record.tag == hangdoctor::SessionRecordTag::kAsyncPost) {
        saw_async = true;
      }
    }
    hangdoctor::ReplaySession session(std::move(log));
    session.Run();
    EXPECT_FALSE(session.core().log().empty()) << path;

    hangdoctor::SessionLogLayout layout;
    ASSERT_TRUE(hangdoctor::ScanSessionLog(bytes, &layout, &error)) << path << ": " << error;
    EXPECT_GT(layout.header_end, 0u) << path;
    EXPECT_GT(layout.record_offsets.size(), 2u) << path;
  }
  EXPECT_TRUE(saw_counter_fault)
      << "the corpus must exercise the kCounterFault grammar (see faulty.hdsl)";
  EXPECT_TRUE(saw_async)
      << "the corpus must exercise the async-record grammar (see async_session.hdsl)";
}

TEST(HdslFuzzTest, SeededMutantsNeverCrashAndFailuresAreSticky) {
  std::vector<std::string> files = CorpusFiles();
  ASSERT_FALSE(files.empty());
  const int64_t iters = FuzzIters();
  simkit::Rng rng(FuzzSeed(), /*stream=*/0x68647a66ULL);

  // Pre-scan every corpus file once; mutants derive from the original layout.
  std::vector<std::pair<std::string, hangdoctor::SessionLogLayout>> corpus;
  for (const std::string& path : files) {
    std::string bytes = FileBytes(path);
    hangdoctor::SessionLogLayout layout;
    std::string error;
    ASSERT_TRUE(hangdoctor::ScanSessionLog(bytes, &layout, &error)) << path << ": " << error;
    corpus.emplace_back(std::move(bytes), std::move(layout));
  }

  std::map<std::string, int64_t> by_family;
  int64_t parsed = 0;
  int64_t rejected = 0;
  for (int64_t i = 0; i < iters; ++i) {
    const auto& [bytes, layout] =
        corpus[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(corpus.size()) - 1))];
    faultsim::HdslMutation applied;
    std::string mutant = faultsim::MutateSessionLog(bytes, layout.header_end,
                                                    layout.record_offsets, rng, &applied);
    ++by_family[faultsim::HdslMutationName(applied)];

    hangdoctor::SessionLog log;
    std::string error;
    if (hangdoctor::LoadSessionLogBytes(mutant, &log, &error)) {
      // Some mutations land in don't-care bytes (string contents, counter values) or
      // produce a different-but-legal log; replaying it must still be safe.
      ++parsed;
      hangdoctor::ReplaySession session(std::move(log));
      session.Run();
    } else {
      ++rejected;
      EXPECT_FALSE(error.empty()) << "iter " << i << " family "
                                  << faultsim::HdslMutationName(applied);
    }
  }
  // The mutator must actually bite: most mutants of a compact binary format are invalid.
  EXPECT_GT(rejected, parsed / 4) << "mutations are too gentle to test the parser";
  EXPECT_EQ(parsed + rejected, iters);
  // Uniform family choice at any realistic budget covers every family.
  if (iters >= 500) {
    EXPECT_EQ(by_family.size(), static_cast<size_t>(faultsim::kNumHdslMutations));
  }
}

TEST(HdslFuzzTest, TruncationAtEveryRecordBoundaryIsRejected) {
  for (const std::string& path : CorpusFiles()) {
    std::string bytes = FileBytes(path);
    hangdoctor::SessionLogLayout layout;
    std::string error;
    ASSERT_TRUE(hangdoctor::ScanSessionLog(bytes, &layout, &error)) << path;
    std::vector<size_t> cuts = layout.record_offsets;
    cuts.push_back(layout.header_end);
    cuts.push_back(0);
    cuts.push_back(bytes.size() - 1);
    for (size_t cut : cuts) {
      if (cut >= bytes.size()) {
        continue;  // cutting nothing is the intact log
      }
      hangdoctor::SessionLog log;
      error.clear();
      EXPECT_FALSE(hangdoctor::LoadSessionLogBytes(bytes.substr(0, cut), &log, &error))
          << path << " cut at " << cut;
      EXPECT_FALSE(error.empty()) << path << " cut at " << cut;
    }
  }
}

std::string MuxCorpusPath() { return std::string(HD_CORPUS_DIR) + "/fleet_kb.hdsl3"; }

TEST(HdslMuxCorpusTest, MuxEntryDemuxesToTheSessionCorpusAndReplaysWithAndWithoutKb) {
  std::string bytes = FileBytes(MuxCorpusPath());
  ASSERT_FALSE(bytes.empty()) << "corpus drifted from tools/make_corpus";

  // The container is framing only: demux reproduces each committed session log
  // byte-identically.
  std::vector<hangdoctor::SessionLogSlice> slices;
  std::string error;
  ASSERT_TRUE(hangdoctor::DemuxSessionLog(bytes, &slices, &error)) << error;
  std::vector<std::string> files = CorpusFiles();
  ASSERT_EQ(slices.size(), files.size());
  std::multiset<std::string> originals;
  for (const std::string& path : files) {
    originals.insert(FileBytes(path));
  }
  for (const hangdoctor::SessionLogSlice& slice : slices) {
    auto it = originals.find(slice.bytes);
    ASSERT_NE(it, originals.end())
        << "session " << slice.id.value << " demuxed to bytes not in the corpus";
    originals.erase(it);
  }

  // The embedded epoch-publish frames drive a shared KB when one is attached; either way
  // the replayed results are bit-identical, because published snapshots are advisory.
  std::vector<hangdoctor::SessionResult> without;
  ASSERT_TRUE(hangdoctor::ReplayMultiplexedLog(bytes, {}, &without, &error)) << error;
  hangdoctor::KnowledgeBase kb;
  hangdoctor::ServiceOptions with_kb;
  with_kb.knowledge_base = &kb;
  std::vector<hangdoctor::SessionResult> with;
  ASSERT_TRUE(hangdoctor::ReplayMultiplexedLog(bytes, with_kb, &with, &error)) << error;
  ASSERT_EQ(with.size(), without.size());
  for (size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i].id.value, without[i].id.value);
    EXPECT_EQ(with[i].app_package, without[i].app_package);
    EXPECT_EQ(with[i].report.Render(1), without[i].report.Render(1)) << "session " << i;
    EXPECT_EQ(with[i].discovered, without[i].discovered) << "session " << i;
    EXPECT_EQ(with[i].stack_samples, without[i].stack_samples) << "session " << i;
    EXPECT_EQ(with[i].stream_ok, without[i].stream_ok) << "session " << i;
  }
  EXPECT_EQ(kb.TotalStats().sessions_absorbed, static_cast<int64_t>(with.size()));
}

TEST(HdslMuxFuzzTest, SeededMuxMutantsNeverCrashAndFailuresAreSticky) {
  std::string bytes = FileBytes(MuxCorpusPath());
  ASSERT_FALSE(bytes.empty());
  hangdoctor::SessionLogLayout layout;
  std::string error;
  ASSERT_TRUE(hangdoctor::ScanMuxLog(bytes, &layout, &error)) << error;
  EXPECT_GT(layout.record_offsets.size(), 8u);

  // ScanMuxLog presents frame offsets exactly like session-log record offsets, so the structure-aware
  // mutator applies unchanged; every mutant must demux + replay, or be rejected with a
  // non-empty error — never crash (the CI fuzz-smoke leg runs this under ASan/UBSan).
  const int64_t iters = std::max<int64_t>(FuzzIters() / 4, 200);
  simkit::Rng rng(FuzzSeed(), /*stream=*/0x6d75786dULL);
  int64_t parsed = 0;
  int64_t rejected = 0;
  for (int64_t i = 0; i < iters; ++i) {
    faultsim::HdslMutation applied;
    std::string mutant = faultsim::MutateSessionLog(bytes, layout.header_end,
                                                    layout.record_offsets, rng, &applied);
    std::vector<hangdoctor::SessionLogSlice> slices;
    error.clear();
    if (hangdoctor::DemuxSessionLog(mutant, &slices, &error)) {
      ++parsed;
      std::vector<hangdoctor::SessionResult> results;
      std::string replay_error;
      hangdoctor::ReplayMultiplexedLog(mutant, {}, &results, &replay_error);
    } else {
      ++rejected;
      EXPECT_FALSE(error.empty()) << "iter " << i << " family "
                                  << faultsim::HdslMutationName(applied);
    }
  }
  EXPECT_EQ(parsed + rejected, iters);
  EXPECT_GT(rejected, 0) << "mutations are too gentle to test the demuxer";
}

TEST(NetdWireFuzzTest, SeededWireMutantsParseOrStickyRejectNeverCrash) {
  // Pristine wire stream: HELLO + every frame of a container holding the session corpus —
  // the same bytes a healthy loadgen would send, with the offset of each frame's length
  // prefix recorded for the wire mutator.
  std::vector<std::string> files = CorpusFiles();
  ASSERT_FALSE(files.empty());
  std::vector<std::string> logs;
  std::vector<hangdoctor::SessionLogSlice> sessions;
  for (const std::string& path : files) {
    logs.push_back(FileBytes(path));
  }
  for (size_t i = 0; i < logs.size(); ++i) {
    sessions.push_back({telemetry::SessionId{i + 1}, logs[i]});
  }
  std::string container, error;
  ASSERT_TRUE(hangdoctor::MuxSessionLogs(sessions, {}, &container, &error)) << error;
  std::vector<std::string> frames;
  ASSERT_TRUE(netd::ContainerToWireFrames(container, &frames, &error)) << error;
  std::string stream;
  std::vector<size_t> frame_offsets;
  frame_offsets.push_back(stream.size());
  netd::AppendFrame(&stream, netd::BuildHello(4));
  for (const std::string& frame : frames) {
    frame_offsets.push_back(stream.size());
    netd::AppendFrame(&stream, frame);
  }

  // One long-lived server ingests every mutant over a fresh socketpair connection. Under
  // the CI fuzz-smoke leg this whole loop runs with ASan/UBSan watching the daemon side.
  netd::ServerOptions options;
  options.listen = false;
  options.workers = 1;
  options.rings = 1;
  options.service.shards = 2;
  netd::NetServer server(options);

  const int64_t iters = std::max<int64_t>(FuzzIters() / 20, 100);
  simkit::Rng rng(FuzzSeed(), /*stream=*/0x6e657464ULL);
  std::map<std::string, int64_t> by_family;
  int64_t sticky_rejects = 0;
  for (int64_t i = 0; i < iters; ++i) {
    faultsim::WireMutation applied;
    std::string mutant = faultsim::MutateWireStream(stream, frame_offsets, rng, &applied);
    ++by_family[faultsim::WireMutationName(applied)];

    int sv[2] = {-1, -1};
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    server.AdoptConnection(sv[0]);
    netd::NetClient client;
    client.Adopt(sv[1]);
    client.SendRaw(mutant);  // a served sticky reject may close mid-write; that's the point
    client.ShutdownWrite();
    netd::Reply reply;
    while (client.ReadReply(&reply)) {
      if (reply.tag == netd::ReplyTag::kError) {
        EXPECT_FALSE(reply.message.empty()) << "iter " << i << " family "
                                            << faultsim::WireMutationName(applied);
        ++sticky_rejects;
      }
    }
    client.Close();
  }
  // Every connection either drained or aborted; nothing survives, nothing leaks.
  ASSERT_TRUE(server.WaitIdle(60000));
  EXPECT_EQ(server.live_sessions(), 0u);
  EXPECT_EQ(server.live_session_bytes(), 0);
  server.Stop();
  EXPECT_GT(sticky_rejects + server.stats().sessions_aborted.load(), 0)
      << "wire mutations are too gentle to test the daemon";
  if (iters >= 100) {
    EXPECT_EQ(by_family.size(), static_cast<size_t>(faultsim::kNumWireMutations));
  }
}

// Legal Figure 3 transitions under the default two-phase config (plus the degraded
// timeout-only suspicion, which still only ever marks U -> S).
bool LegalTransition(hangdoctor::ActionState from, hangdoctor::ActionState to) {
  using S = hangdoctor::ActionState;
  return (from == S::kUncategorized && to == S::kNormal) ||
         (from == S::kUncategorized && to == S::kSuspicious) ||
         (from == S::kSuspicious && to == S::kNormal) ||
         (from == S::kSuspicious && to == S::kHangBug) ||
         (from == S::kNormal && to == S::kUncategorized);
}

TEST(SpiStreamPropertyTest, ValidStreamsDriveOnlyLegalTransitionsWithMonotoneOverhead) {
  const int64_t rounds = std::max<int64_t>(FuzzIters() / 40, 25);
  simkit::Rng rng(FuzzSeed(), /*stream=*/0x73706970ULL);
  for (int64_t round = 0; round < rounds; ++round) {
    faultsim::StreamGenOptions options;
    options.num_actions = static_cast<int32_t>(rng.UniformInt(1, 6));
    options.num_executions = static_cast<int32_t>(rng.UniformInt(4, 40));
    options.counter_fault_probability = rng.Bernoulli(0.5) ? 0.15 : 0.0;
    faultsim::GeneratedStream stream = faultsim::GenerateStream(options, rng);

    hangdoctor::DetectorCore core(stream.info, hangdoctor::HangDoctorConfig{});
    int64_t last_cpu = 0;
    int64_t last_bytes = 0;
    for (faultsim::StreamEvent& event : stream.events) {
      std::vector<faultsim::StreamEvent> one;
      one.push_back(std::move(event));
      faultsim::PushStream(core, one);
      event = std::move(one.front());
      EXPECT_GE(core.overhead().cpu(), last_cpu) << "round " << round;
      EXPECT_GE(core.overhead().memory_bytes(), last_bytes) << "round " << round;
      last_cpu = core.overhead().cpu();
      last_bytes = core.overhead().memory_bytes();
    }

    ASSERT_TRUE(core.stream().ok()) << "round " << round << ": " << core.stream().error();
    EXPECT_EQ(core.degradation().dropped_records, 0) << "round " << round;
    for (const hangdoctor::StateTransition& transition : core.actions().transitions()) {
      EXPECT_TRUE(LegalTransition(transition.from, transition.to))
          << "round " << round << ": illegal "
          << hangdoctor::ActionStateName(transition.from) << " -> "
          << hangdoctor::ActionStateName(transition.to) << " (" << transition.reason << ")";
      EXPECT_GE(transition.action_uid, 0) << "round " << round;
      EXPECT_LT(transition.action_uid, options.num_actions) << "round " << round;
    }
  }
}

TEST(SpiStreamPropertyTest, CorruptStreamsAreDroppedOrStickyFailedNeverFatal) {
  const int64_t rounds = std::max<int64_t>(FuzzIters() / 40, 25);
  simkit::Rng rng(FuzzSeed(), /*stream=*/0x73706963ULL);
  std::set<std::string> corruptions_seen;
  for (int64_t round = 0; round < rounds; ++round) {
    faultsim::StreamGenOptions options;
    options.num_actions = static_cast<int32_t>(rng.UniformInt(1, 6));
    options.num_executions = static_cast<int32_t>(rng.UniformInt(4, 40));
    options.corrupt = true;
    faultsim::GeneratedStream stream = faultsim::GenerateStream(options, rng);
    ASSERT_FALSE(stream.corruption.empty()) << "round " << round;
    corruptions_seen.insert(stream.corruption);

    hangdoctor::DetectorCore core(stream.info, hangdoctor::HangDoctorConfig{});
    faultsim::PushStream(core, stream.events);
    bool noticed = core.degradation().dropped_records > 0 || !core.stream().ok();
    EXPECT_TRUE(noticed) << "round " << round << ": corruption '" << stream.corruption
                         << "' sailed through unnoticed";
    if (!core.stream().ok()) {
      EXPECT_FALSE(core.stream().error().empty()) << "round " << round;
    }
  }
  if (rounds >= 100) {
    EXPECT_GE(corruptions_seen.size(), 4u) << "corruption variety collapsed";
  }
}

}  // namespace
