// Record/replay round-trip tests: a live HangDoctor session taped through SessionLogWriter
// and replayed through ReplaySession must reproduce the detector's observable state
// bit-identically — execution log, action-table transitions, Hang Bug Report, overhead
// accounting, and discovered blocking APIs. Also checks that recording is a passive tap
// (recorded fleets equal unrecorded ones at any worker count) and that the written log
// files themselves are byte-identical across parallelism levels.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/hangdoctor/detector_core.h"
#include "src/hosts/hang_doctor.h"
#include "src/hosts/replay_host.h"
#include "src/hosts/session_log.h"
#include "src/workload/catalog.h"
#include "src/workload/experiment.h"
#include "src/workload/fleet.h"

namespace {

const workload::Catalog& SharedCatalog() {
  static const workload::Catalog* catalog = new workload::Catalog();
  return *catalog;
}

std::string TempPath(const std::string& leaf) {
  std::filesystem::path dir = std::filesystem::temp_directory_path() / "hd_record_replay";
  std::filesystem::create_directories(dir);
  return (dir / leaf).string();
}

// Every observable output of a DetectorCore, flattened to comparable strings.
struct CoreSnapshot {
  std::vector<std::string> log_lines;
  std::vector<std::string> transitions;
  std::string report;
  int64_t overhead_cpu = 0;
  int64_t overhead_bytes = 0;
  int64_t stack_samples = 0;
};

std::string FormatRecord(const hangdoctor::ExecutionRecord& record) {
  std::ostringstream out;
  out << record.execution_id << " uid=" << record.action_uid << " resp=" << record.response
      << " hang=" << record.hang << " before=" << static_cast<int>(record.state_before)
      << " s1=" << record.schecker_ran << " s2=" << record.diagnoser_ran
      << " traced=" << record.traced << " verdict=" << hangdoctor::VerdictName(record.verdict)
      << " traces=" << record.traces.size();
  if (record.diagnosis.valid) {
    out << " culprit=" << record.diagnosis.culprit.clazz << "."
        << record.diagnosis.culprit.function << "@" << record.diagnosis.culprit.file << ":"
        << record.diagnosis.culprit.line << " occ=" << record.diagnosis.occurrence_factor
        << " ui=" << record.diagnosis.is_ui << " self=" << record.diagnosis.is_self_developed
        << " n=" << record.diagnosis.samples_used;
  }
  for (int64_t diff : record.schecker_diffs) {
    out << " " << diff;
  }
  return out.str();
}

CoreSnapshot Snapshot(const hangdoctor::DetectorCore& core, int32_t total_devices) {
  CoreSnapshot snap;
  for (const hangdoctor::ExecutionRecord& record : core.log()) {
    snap.log_lines.push_back(FormatRecord(record));
  }
  for (const hangdoctor::StateTransition& transition : core.actions().transitions()) {
    std::ostringstream out;
    out << transition.time << " uid=" << transition.action_uid << " "
        << static_cast<int>(transition.from) << "->" << static_cast<int>(transition.to) << " "
        << transition.reason;
    snap.transitions.push_back(out.str());
  }
  snap.report = core.local_report().Render(total_devices);
  snap.overhead_cpu = core.overhead().cpu();
  snap.overhead_bytes = core.overhead().memory_bytes();
  snap.stack_samples = core.stack_samples_taken();
  return snap;
}

void ExpectSnapshotsEqual(const CoreSnapshot& live, const CoreSnapshot& replayed,
                          const std::string& label) {
  EXPECT_EQ(live.log_lines, replayed.log_lines) << label;
  EXPECT_EQ(live.transitions, replayed.transitions) << label;
  EXPECT_EQ(live.report, replayed.report) << label;
  EXPECT_EQ(live.overhead_cpu, replayed.overhead_cpu) << label;
  EXPECT_EQ(live.overhead_bytes, replayed.overhead_bytes) << label;
  EXPECT_EQ(live.stack_samples, replayed.stack_samples) << label;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Records a live session for `spec`, replays it, and checks every observable for equality.
void RoundTrip(const droidsim::AppSpec* spec, uint64_t seed,
               const hangdoctor::HangDoctorConfig& config, const std::string& label) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase live_db = catalog.MakeKnownDatabase();
  hangdoctor::BlockingApiDatabase replay_db = catalog.MakeKnownDatabase();
  const std::string path = TempPath(label + ".hdsl");

  workload::SingleAppHarness harness(droidsim::LgV10(), spec, seed);
  hangdoctor::SessionLogWriter writer(path, config);
  ASSERT_TRUE(writer.ok()) << path;
  hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(), config, &live_db,
                                /*fleet_report=*/nullptr, /*device_id=*/3, &writer);
  harness.RunUserSession(simkit::Seconds(45));
  workload::TraceUsage usage = harness.Usage();
  writer.WriteTraceUsage(usage.cpu, usage.bytes);
  writer.Finish();

  CoreSnapshot live = Snapshot(doctor.core(), 4);
  double live_overhead = doctor.overhead().OverheadPercent(usage.cpu, usage.bytes);

  std::string error;
  std::unique_ptr<hangdoctor::ReplaySession> session =
      hangdoctor::ReplaySessionLog(path, &error, &replay_db);
  ASSERT_NE(session, nullptr) << label << ": " << error;
  CoreSnapshot replayed = Snapshot(session->core(), 4);
  ExpectSnapshotsEqual(live, replayed, label);
  EXPECT_EQ(live_db.discovered(), replay_db.discovered()) << label;
  EXPECT_DOUBLE_EQ(session->OverheadPercent(), live_overhead) << label;

  // The replayed header must carry the live session's identity and configuration.
  EXPECT_EQ(session->log().info.app_package, spec->package) << label;
  EXPECT_EQ(session->log().config.main_only, config.main_only) << label;
  EXPECT_EQ(session->log().config.second_phase_only, config.second_phase_only) << label;
}

TEST(RecordReplayTest, EveryStudyAppRoundTripsBitIdentically) {
  const workload::Catalog& catalog = SharedCatalog();
  ASSERT_FALSE(catalog.study_apps().empty());
  uint64_t seed = 2000;
  for (const droidsim::AppSpec* spec : catalog.study_apps()) {
    RoundTrip(spec, seed++, hangdoctor::HangDoctorConfig{}, "study_" + spec->name);
  }
}

// HDSL v4: sessions of the async study apps carry AsyncPost/AsyncRun/AsyncWaitStart/
// AsyncWaitEnd records and thread-tagged samples; the round trip must reproduce the causal
// diagnosis (async culprit, wait-site provenance) bit-identically.
TEST(RecordReplayTest, AsyncStudyAppsRoundTripBitIdentically) {
  const workload::Catalog& catalog = SharedCatalog();
  ASSERT_FALSE(catalog.async_apps().empty());
  uint64_t seed = 5000;
  for (const droidsim::AppSpec* spec : catalog.async_apps()) {
    RoundTrip(spec, seed++, hangdoctor::HangDoctorConfig{}, "async_" + spec->name);
  }
}

// The recorded async logs must actually contain the v4 causal records (a silent fallback to
// the pre-async encoding would also "round-trip").
TEST(RecordReplayTest, AsyncSessionLogsContainCausalRecords) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase db = catalog.MakeKnownDatabase();
  const std::string path = TempPath("async_records.hdsl");
  {
    workload::SingleAppHarness harness(droidsim::LgV10(), catalog.async_apps()[0], 5001);
    hangdoctor::SessionLogWriter writer(path, hangdoctor::HangDoctorConfig{});
    ASSERT_TRUE(writer.ok());
    hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(),
                                  hangdoctor::HangDoctorConfig{}, &db,
                                  /*fleet_report=*/nullptr, /*device_id=*/0, &writer);
    (void)doctor;
    harness.RunUserSession(simkit::Seconds(45));
    writer.Finish();
  }
  hangdoctor::SessionLog log;
  std::string error;
  ASSERT_TRUE(hangdoctor::LoadSessionLog(path, &log, &error)) << error;
  int64_t posts = 0;
  int64_t runs = 0;
  int64_t wait_starts = 0;
  int64_t wait_ends = 0;
  for (const hangdoctor::SessionRecord& record : log.records) {
    switch (record.tag) {
      case hangdoctor::SessionRecordTag::kAsyncPost:
        ++posts;
        break;
      case hangdoctor::SessionRecordTag::kAsyncRun:
        ++runs;
        break;
      case hangdoctor::SessionRecordTag::kAsyncWaitStart:
        ++wait_starts;
        break;
      case hangdoctor::SessionRecordTag::kAsyncWaitEnd:
        ++wait_ends;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(posts, 0);
  EXPECT_EQ(runs, posts * 2);  // every task logs a begin and an end
  EXPECT_GT(wait_starts, 0);
  EXPECT_EQ(wait_starts, wait_ends);
}

TEST(RecordReplayTest, KeepTracesConfigRoundTrips) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::HangDoctorConfig config;
  config.keep_traces = true;
  RoundTrip(catalog.study_apps()[0], 77, config, "keep_traces");
}

TEST(RecordReplayTest, SecondPhaseOnlyConfigRoundTrips) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::HangDoctorConfig config;
  config.second_phase_only = true;
  RoundTrip(catalog.study_apps()[1], 78, config, "second_phase_only");
}

TEST(RecordReplayTest, MainOnlyConfigRoundTrips) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::HangDoctorConfig config;
  config.main_only = true;
  RoundTrip(catalog.study_apps()[2], 79, config, "main_only");
}

// Builds the small fleet used by the parallelism tests: two apps x two devices.
std::vector<workload::FleetJob> SmallFleet(const hangdoctor::BlockingApiDatabase* known_db) {
  const workload::Catalog& catalog = SharedCatalog();
  std::vector<workload::FleetJob> jobs;
  for (size_t app = 0; app < 2; ++app) {
    for (int32_t device = 0; device < 2; ++device) {
      workload::FleetJob job;
      job.spec = catalog.study_apps()[app];
      job.profile = droidsim::LgV10();
      job.seed = workload::FleetSeed(42, jobs.size());
      job.session = simkit::Seconds(30);
      job.device_id = device;
      job.known_db = known_db;
      jobs.push_back(job);
    }
  }
  return jobs;
}

void ExpectSummariesEqual(const workload::FleetSummary& a, const workload::FleetSummary& b,
                          const std::string& label) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size()) << label;
  EXPECT_EQ(a.failed, b.failed) << label;
  EXPECT_EQ(a.merged_report.Render(4), b.merged_report.Render(4)) << label;
  EXPECT_EQ(a.discovered, b.discovered) << label;
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].report.Render(4), b.jobs[i].report.Render(4)) << label << " job " << i;
    EXPECT_EQ(a.jobs[i].stack_samples, b.jobs[i].stack_samples) << label << " job " << i;
  }
}

TEST(RecordReplayTest, RecordingIsAPassiveTapAtAnyParallelism) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();

  std::vector<workload::FleetJob> plain = SmallFleet(&known_db);
  std::vector<workload::FleetJob> recorded_serial = SmallFleet(&known_db);
  std::vector<workload::FleetJob> recorded_parallel = SmallFleet(&known_db);
  const std::string dir_serial = TempPath("fleet_serial");
  const std::string dir_parallel = TempPath("fleet_parallel");
  std::filesystem::create_directories(dir_serial);
  std::filesystem::create_directories(dir_parallel);
  for (size_t i = 0; i < plain.size(); ++i) {
    recorded_serial[i].record_path = dir_serial + "/job_" + std::to_string(i) + ".hdsl";
    recorded_parallel[i].record_path = dir_parallel + "/job_" + std::to_string(i) + ".hdsl";
  }

  workload::FleetSummary baseline = workload::RunFleet(plain, {.jobs = 1});
  workload::FleetSummary serial = workload::RunFleet(recorded_serial, {.jobs = 1});
  workload::FleetSummary parallel = workload::RunFleet(recorded_parallel, {.jobs = 4});
  ASSERT_EQ(baseline.failed, 0u);

  ExpectSummariesEqual(baseline, serial, "recorded serial vs plain");
  ExpectSummariesEqual(baseline, parallel, "recorded parallel vs plain");

  // The session logs themselves are byte-identical regardless of the worker count.
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(FileBytes(recorded_serial[i].record_path),
              FileBytes(recorded_parallel[i].record_path))
        << "job " << i;
  }

  // Replaying the recorded fleet reproduces reports, discoveries, and overhead.
  std::vector<std::string> paths;
  for (const workload::FleetJob& job : recorded_serial) {
    paths.push_back(job.record_path);
  }
  workload::FleetSummary replayed = workload::ReplayFleet(paths, {.jobs = 2}, &known_db);
  ExpectSummariesEqual(baseline, replayed, "replayed vs plain");
  for (size_t i = 0; i < paths.size(); ++i) {
    EXPECT_DOUBLE_EQ(replayed.jobs[i].overhead_pct, baseline.jobs[i].overhead_pct)
        << "job " << i;
  }
}

TEST(RecordReplayTest, ReplayOfMissingLogFailsThatJobOnly) {
  std::vector<std::string> paths = {TempPath("does_not_exist.hdsl")};
  workload::FleetSummary summary = workload::ReplayFleet(paths, {.jobs = 1});
  ASSERT_EQ(summary.jobs.size(), 1u);
  EXPECT_FALSE(summary.jobs[0].ok);
  EXPECT_EQ(summary.failed, 1u);
  EXPECT_NE(summary.jobs[0].error.find("does_not_exist"), std::string::npos);
}

TEST(RecordReplayTest, TruncatedLogIsRejectedWithError) {
  const workload::Catalog& catalog = SharedCatalog();
  hangdoctor::BlockingApiDatabase db = catalog.MakeKnownDatabase();
  const std::string path = TempPath("truncate_me.hdsl");
  {
    workload::SingleAppHarness harness(droidsim::LgV10(), catalog.study_apps()[0], 5);
    hangdoctor::SessionLogWriter writer(path, hangdoctor::HangDoctorConfig{});
    ASSERT_TRUE(writer.ok());
    hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(),
                                  hangdoctor::HangDoctorConfig{}, &db,
                                  /*fleet_report=*/nullptr, /*device_id=*/0, &writer);
    (void)doctor;
    harness.RunUserSession(simkit::Seconds(10));
    writer.Finish();
  }
  std::string bytes = FileBytes(path);
  ASSERT_GT(bytes.size(), 8u);
  const std::string cut = TempPath("truncated.hdsl");
  {
    std::ofstream out(cut, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  std::string error;
  EXPECT_EQ(hangdoctor::ReplaySessionLog(cut, &error), nullptr);
  EXPECT_FALSE(error.empty());

  std::string garbage = TempPath("garbage.hdsl");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "not a session log";
  }
  error.clear();
  EXPECT_EQ(hangdoctor::ReplaySessionLog(garbage, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

}  // namespace
